//! Barrier primitives for sharded, window-synchronized event loops.
//!
//! A conservative parallel discrete-event scheduler partitions the model
//! into *shards* (disjoint slices of simulation state, each with its own
//! [`EventQueue`](crate::EventQueue)) and advances simulated time in
//! *tick windows*: every shard processes all of its events inside the
//! window `[t0, t0 + W]` in parallel, then a coordinator merges the
//! cross-shard messages produced and opens the next window. The window
//! width `W` must not exceed the model's *lookahead* — the minimum
//! latency of any cross-shard interaction — so that nothing produced
//! inside a window can also be consumed by another shard inside it.
//!
//! [`PhaseBarrier`] is the synchronization core of that loop: an
//! epoch-numbered open/arrive barrier for one coordinator plus `N`
//! workers. The coordinator [`open`](PhaseBarrier::open)s a phase,
//! workers observe it via [`await_phase`](PhaseBarrier::await_phase),
//! do their window's work, and [`arrive`](PhaseBarrier::arrive); the
//! coordinator blocks in [`await_workers`](PhaseBarrier::await_workers)
//! until all have arrived, merges, and repeats. Waiting spins briefly
//! and then yields, so the barrier stays correct (if slower) even when
//! the host has fewer hardware threads than workers.
//!
//! Memory ordering: `open` is a release operation and `await_phase` an
//! acquire, so everything the coordinator writes before opening a phase
//! (window bounds, routed events) is visible to workers inside it;
//! `arrive`/`await_workers` pair the same way in the other direction.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Epoch value signalling that no more phases will be opened.
const CLOSED: u64 = u64::MAX;

/// An epoch-based phase barrier for one coordinator and `workers`
/// spin-waiting participants.
///
/// ```
/// use sim_core::shard::PhaseBarrier;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let barrier = PhaseBarrier::new(2);
/// let sum = AtomicU64::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..2 {
///         s.spawn(|| {
///             let mut seen = 0;
///             // Each worker handles every phase until the barrier closes.
///             while let Some(epoch) = barrier.await_phase(seen) {
///                 seen = epoch;
///                 sum.fetch_add(epoch, Ordering::Relaxed);
///                 barrier.arrive();
///             }
///         });
///     }
///     for _ in 0..3 {
///         barrier.open();
///         barrier.await_workers();
///     }
///     barrier.close();
/// });
/// // Phases 1, 2, 3 were each handled by both workers.
/// assert_eq!(sum.load(Ordering::Relaxed), 2 * (1 + 2 + 3));
/// ```
#[derive(Debug)]
pub struct PhaseBarrier {
    epoch: AtomicU64,
    arrived: AtomicUsize,
    workers: usize,
}

impl PhaseBarrier {
    /// Creates a barrier for `workers` participants (the coordinator is
    /// not counted).
    pub fn new(workers: usize) -> Self {
        PhaseBarrier {
            epoch: AtomicU64::new(0),
            arrived: AtomicUsize::new(0),
            workers,
        }
    }

    /// Number of worker participants.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Coordinator: opens the next phase and returns its epoch.
    ///
    /// Must not be called again before [`await_workers`](Self::await_workers)
    /// has returned for the previous phase.
    pub fn open(&self) -> u64 {
        self.arrived.store(0, Ordering::Relaxed);
        // Release: workers that observe the new epoch also observe every
        // write the coordinator made before opening.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Coordinator: signals that no further phases will open; workers
    /// blocked in [`await_phase`](Self::await_phase) return `None`.
    pub fn close(&self) {
        self.epoch.store(CLOSED, Ordering::Release);
    }

    /// Worker: blocks until a phase newer than `seen` opens; returns its
    /// epoch, or `None` once the barrier is closed.
    pub fn await_phase(&self, seen: u64) -> Option<u64> {
        let mut spins = 0u32;
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e == CLOSED {
                return None;
            }
            if e != seen {
                return Some(e);
            }
            spin_or_yield(&mut spins);
        }
    }

    /// Worker: marks this phase's work complete.
    pub fn arrive(&self) {
        // Release: the coordinator's acquire load in `await_workers`
        // then observes all of this worker's phase output.
        self.arrived.fetch_add(1, Ordering::Release);
    }

    /// Coordinator: blocks until every worker has arrived at the current
    /// phase.
    pub fn await_workers(&self) {
        let mut spins = 0u32;
        while self.arrived.load(Ordering::Acquire) < self.workers {
            spin_or_yield(&mut spins);
        }
    }

    /// Coordinator: like [`await_workers`](Self::await_workers), but polls
    /// `abort` while waiting and returns `false` if it fires before every
    /// worker arrives. A worker that dies mid-phase (e.g. its job closure
    /// panicked and was caught by a pool) never calls
    /// [`arrive`](Self::arrive); an abortable wait lets the coordinator
    /// detect that through a side channel instead of spinning forever.
    pub fn await_workers_or_abort(&self, mut abort: impl FnMut() -> bool) -> bool {
        let mut spins = 0u32;
        while self.arrived.load(Ordering::Acquire) < self.workers {
            if abort() {
                return false;
            }
            spin_or_yield(&mut spins);
        }
        true
    }
}

/// Spins briefly, then yields to the OS scheduler so progress is made
/// even when participants outnumber hardware threads.
pub fn spin_or_yield(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn phases_run_in_lockstep() {
        let barrier = PhaseBarrier::new(3);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut seen = 0;
                    while let Some(e) = barrier.await_phase(seen) {
                        seen = e;
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.arrive();
                    }
                });
            }
            for round in 1..=10u64 {
                barrier.open();
                barrier.await_workers();
                // All three workers ran exactly once per phase.
                assert_eq!(counter.load(Ordering::SeqCst), 3 * round);
            }
            barrier.close();
        });
    }

    #[test]
    fn close_without_phases_releases_workers() {
        let barrier = PhaseBarrier::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| barrier.await_phase(0));
            barrier.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn zero_workers_is_trivially_complete() {
        let barrier = PhaseBarrier::new(0);
        barrier.open();
        barrier.await_workers(); // must not block
    }

    #[test]
    fn abortable_wait_returns_false_when_a_worker_never_arrives() {
        let barrier = PhaseBarrier::new(2);
        barrier.open();
        barrier.arrive(); // only one of the two workers arrives
        let mut polls = 0u32;
        let done = barrier.await_workers_or_abort(|| {
            polls += 1;
            polls > 3
        });
        assert!(!done);
        barrier.arrive();
        assert!(barrier.await_workers_or_abort(|| false));
    }
}

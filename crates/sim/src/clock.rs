//! Clock domains: convert component cycles to global ticks.

use crate::{Freq, Tick};

/// A clock domain with a fixed frequency.
///
/// Components express their internal latencies in cycles; a `Clock`
/// converts those to picosecond [`Tick`]s and aligns times to clock edges.
///
/// ```
/// use sim_core::{Clock, Freq, Tick};
/// let clk = Clock::new(Freq::mhz(400)); // 2.5 ns period
/// assert_eq!(clk.cycles(4), Tick::from_ns(10));
/// assert_eq!(clk.cycles_for(Tick::from_ns(10)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    freq: Freq,
    period: Tick,
}

impl Clock {
    /// Creates a clock with the given frequency.
    pub fn new(freq: Freq) -> Self {
        Clock {
            freq,
            period: freq.period(),
        }
    }

    /// The clock frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Duration of one cycle.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Duration of `n` cycles.
    pub fn cycles(&self, n: u64) -> Tick {
        self.period * n
    }

    /// Number of whole cycles that fit in `span` (rounded up).
    pub fn cycles_for(&self, span: Tick) -> u64 {
        let p = self.period.as_ps();
        span.as_ps().div_ceil(p)
    }

    /// The first clock edge at or after `now`.
    pub fn next_edge(&self, now: Tick) -> Tick {
        let p = self.period.as_ps();
        let r = now.as_ps() % p;
        if r == 0 {
            now
        } else {
            Tick::from_ps(now.as_ps() + (p - r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_durations() {
        let clk = Clock::new(Freq::ghz(1));
        assert_eq!(clk.cycles(0), Tick::ZERO);
        assert_eq!(clk.cycles(7), Tick::from_ns(7));
        assert_eq!(clk.period(), Tick::from_ns(1));
    }

    #[test]
    fn cycles_for_rounds_up() {
        let clk = Clock::new(Freq::mhz(400));
        assert_eq!(clk.cycles_for(Tick::from_ns(2)), 1);
        assert_eq!(clk.cycles_for(Tick::from_ps(2_500)), 1);
        assert_eq!(clk.cycles_for(Tick::from_ps(2_501)), 2);
    }

    #[test]
    fn edge_alignment() {
        let clk = Clock::new(Freq::mhz(400)); // 2500 ps
        assert_eq!(clk.next_edge(Tick::ZERO), Tick::ZERO);
        assert_eq!(clk.next_edge(Tick::from_ps(2_500)), Tick::from_ps(2_500));
        assert_eq!(clk.next_edge(Tick::from_ps(2_501)), Tick::from_ps(5_000));
        assert_eq!(clk.next_edge(Tick::from_ps(1)), Tick::from_ps(2_500));
    }
}

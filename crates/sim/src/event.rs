//! A stable-order event queue built on a two-tier calendar.
//!
//! # Structure
//!
//! The queue keeps near-future events in a ring of 4096 tick buckets of
//! 2^13 ps ≈ 8.2 ns each (a classic calendar queue) and far-future
//! events — beyond the ring's ~33 µs horizon — in a lazily-sorted
//! overflow stack (descending, minimum at the back; re-sorted adaptively
//! when pushes dirty it). Discrete-event simulations schedule almost
//! exclusively into the near future, so the common case for both `push`
//! and `pop` touches one bucket:
//!
//! * `push`: O(1) amortized — index the bucket by `(tick - epoch) >>
//!   BUCKET_SHIFT` and append (far-future events append to the overflow
//!   stack, paying their share of one adaptive sort when next consulted
//!   — a deep upfront batch sorts once instead of heap-sifting per
//!   event). Pushes into the *already-sorted cursor bucket*
//!   (dense traffic that schedules into the bucket currently being
//!   drained) append to a pending side-stack instead of binary-inserting,
//!   so they stay O(1) instead of O(bucket) memmoves.
//! * `pop` / [`pop_before`](EventQueue::pop_before): O(1) amortized —
//!   each bucket is sorted once when the cursor reaches it, then popped
//!   from the back; the pending side is sorted lazily per push burst and
//!   pops take the `(tick, seq)`-minimum of the two stacks' backs; cursor
//!   advancement over empty buckets is amortized across the events that
//!   crossed them.
//! * [`peek_tick`](EventQueue::peek_tick): O(buckets) worst case (a scan
//!   for the first non-empty bucket); intended for occasional
//!   "when is the next event?" queries, not the dispatch loop — the
//!   dispatch loop should use the fused `pop_before`.
//!
//! # Determinism
//!
//! Events carry a monotonically increasing sequence number; ties on the
//! tick pop in insertion (FIFO) order, byte-identically to the previous
//! `BinaryHeap` implementation (`crates/sim/tests/calendar_diff.rs`
//! proves this differentially against a reference heap).

use crate::Tick;
use std::cmp::Reverse;

/// log2 of the bucket width: 2^13 ps ≈ 8.2 ns per bucket, matching the
/// nanosecond-scale latencies of the coherence/link models.
const BUCKET_SHIFT: u32 = 13;
/// Width of one calendar bucket in picoseconds.
const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_SHIFT;
/// Number of ring buckets (power of two so indexing is a mask); the ring
/// covers `BUCKETS * BUCKET_WIDTH_PS` ≈ 33.6 µs ahead of the cursor.
const BUCKETS: usize = 4096;

struct Entry<E> {
    /// Raw picosecond timestamp (kept unwrapped for hot comparisons).
    tick: u64,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (u64, u64) {
        (self.tick, self.seq)
    }
}

/// A priority queue of timestamped events with deterministic FIFO tie-break.
///
/// Events pushed at the same [`Tick`] pop in insertion order, which keeps
/// whole-system simulations reproducible run to run. See the [module
/// docs](self) for the calendar-queue structure and complexity.
///
/// ```
/// use sim_core::{EventQueue, Tick};
/// let mut q = EventQueue::new();
/// q.push(Tick::from_ns(1), 'x');
/// q.push(Tick::from_ns(1), 'y');
/// assert_eq!(q.pop(), Some((Tick::from_ns(1), 'x')));
/// assert_eq!(q.pop(), Some((Tick::from_ns(1), 'y')));
/// ```
pub struct EventQueue<E> {
    /// Near-future ring; bucket `(cursor + d) & (BUCKETS-1)` covers ticks
    /// `[epoch + d*W, epoch + (d+1)*W)`. The cursor bucket additionally
    /// absorbs pushes at ticks `< epoch` (the simulated past), which the
    /// per-bucket `(tick, seq)` ordering sequences correctly.
    buckets: Vec<Vec<Entry<E>>>,
    /// Ring index of the bucket starting at `epoch`.
    cursor: usize,
    /// Bucket-aligned tick of the cursor bucket's start.
    epoch: u64,
    /// Whether the cursor bucket is currently sorted (descending by
    /// `(tick, seq)`, so the minimum pops from the back).
    cur_sorted: bool,
    /// Pushes landing in the cursor bucket *after* it was sorted. A
    /// binary-insert into the sorted bucket is O(bucket) per push (the
    /// `Vec::insert` memmove), which dense ~1 ns-spaced batches turn
    /// into quadratic churn; appending here is O(1) and the pending
    /// side is sorted lazily, once per pop burst, so a push/pop
    /// interleave pays O(p log p) for its own batch only. Pops take the
    /// `(tick, seq)`-minimum of the two sorted stacks' backs. Always
    /// empty while the cursor bucket is unsorted, and drained before
    /// the cursor advances.
    cur_pending: Vec<Entry<E>>,
    /// Whether `cur_pending` is currently sorted (same descending order
    /// as the main bucket).
    cur_pending_sorted: bool,
    /// Events in the ring.
    ring_len: usize,
    /// Far-future events (tick beyond the ring horizon at push time),
    /// kept as a lazily-sorted stack (descending by `(tick, seq)`, so
    /// migration pops the minimum from the back with sequential memory
    /// access) instead of a binary heap: a deep upfront batch — the
    /// `stress_parallel` driver queues hundreds of thousands of events
    /// past the ~33 µs ring horizon — costs one adaptive sort instead
    /// of per-event heap sifts over a cache-hostile array. Pushes
    /// append and mark the stack dirty; `ensure_overflow_sorted`
    /// re-sorts before the next ordered access (the stable sort detects
    /// the already-sorted prefix, so an append burst costs roughly its
    /// own merge, not a full re-sort).
    overflow: Vec<Entry<E>>,
    overflow_sorted: bool,
    next_seq: u64,
    /// Exact tick of the earliest queued event, when known. Set when a
    /// bounded pop refuses (it just located that event), min-merged on
    /// push, invalidated by any successful pop. Lets the window loops
    /// of sharded schedulers call [`peek_tick`](Self::peek_tick) right
    /// after draining a window without paying the bucket scan.
    next_hint: Option<u64>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, Vec::new);
        EventQueue {
            buckets,
            cursor: 0,
            epoch: 0,
            cur_sorted: false,
            cur_pending: Vec::new(),
            cur_pending_sorted: false,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_sorted: true,
            next_seq: 0,
            next_hint: None,
        }
    }

    /// Schedules `payload` at `tick`.
    pub fn push(&mut self, tick: Tick, payload: E) {
        let seq = self.next_seq;
        self.push_at_seq(tick, seq, payload);
    }

    /// Schedules `payload` at `tick` with an explicit tie-break sequence
    /// number instead of the queue's internal counter.
    ///
    /// This is the sharding primitive: a scheduler that distributes
    /// events over several per-shard queues can assign sequence numbers
    /// from one global counter, so every queue pops its slice of the
    /// event stream in exactly the order a single merged queue would
    /// have used. The internal counter is bumped past `seq`, so mixing
    /// `push` and `push_at_seq` keeps later plain pushes ordered after
    /// every explicitly numbered event.
    ///
    /// ```
    /// use sim_core::{EventQueue, Tick};
    /// let mut q = EventQueue::new();
    /// // Same tick, explicit seqs: pops in seq order, not push order.
    /// q.push_at_seq(Tick::from_ns(3), 7, 'b');
    /// q.push_at_seq(Tick::from_ns(3), 2, 'a');
    /// assert_eq!(q.pop_seq(), Some((Tick::from_ns(3), 2, 'a')));
    /// assert_eq!(q.pop_seq(), Some((Tick::from_ns(3), 7, 'b')));
    /// ```
    pub fn push_at_seq(&mut self, tick: Tick, seq: u64, payload: E) {
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        if let Some(h) = self.next_hint {
            self.next_hint = Some(h.min(tick.as_ps()));
        }
        let entry = Entry {
            tick: tick.as_ps(),
            seq,
            payload,
        };
        if self.in_ring_range(entry.tick) {
            self.ring_insert(entry);
        } else {
            self.overflow.push(entry);
            self.overflow_sorted = false;
        }
    }

    /// Whether a tick falls inside the ring's current horizon. Computed
    /// via bucket distance so `u64::MAX` timestamps ("never") still
    /// resolve instead of saturating past the horizon forever.
    fn in_ring_range(&self, tick: u64) -> bool {
        (tick.saturating_sub(self.epoch) >> BUCKET_SHIFT) < BUCKETS as u64
    }

    /// Inserts an entry whose tick lies below the ring horizon.
    fn ring_insert(&mut self, entry: Entry<E>) {
        // Pushes into the simulated past (tick < epoch) land in the
        // cursor bucket: they must pop before everything else, and the
        // per-bucket ordering puts them first.
        let d = (entry.tick.saturating_sub(self.epoch) >> BUCKET_SHIFT) as usize;
        debug_assert!(d < BUCKETS);
        let idx = (self.cursor + d) & (BUCKETS - 1);
        if idx == self.cursor && self.cur_sorted {
            // The active bucket is already sorted: append to the O(1)
            // pending side instead of memmoving a binary-insert.
            self.cur_pending.push(entry);
            self.cur_pending_sorted = false;
        } else {
            self.buckets[idx].push(entry);
        }
        self.ring_len += 1;
    }

    /// Re-sorts the overflow stack if pushes dirtied it. The stable
    /// sort is adaptive: an already-sorted bulk with an appended burst
    /// costs a scan plus the burst's merge.
    fn ensure_overflow_sorted(&mut self) {
        if !self.overflow_sorted {
            self.overflow.sort_by_key(|e| Reverse(e.key()));
            self.overflow_sorted = true;
        }
    }

    /// Pops far-future events that now fall below the ring horizon.
    fn migrate_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        self.ensure_overflow_sorted();
        while let Some(e) = self.overflow.last() {
            if !self.in_ring_range(e.tick) {
                break;
            }
            let e = self.overflow.pop().expect("nonempty");
            self.ring_insert(e);
        }
    }

    /// Advances to the next candidate event; returns `None` when empty.
    /// With `bound`, stops (leaving the event queued) once the earliest
    /// event is later than the bound.
    fn pop_bounded(&mut self, bound: Option<u64>) -> Option<(Tick, u64, E)> {
        loop {
            if self.ring_len == 0 {
                // Ring drained: re-anchor the calendar at the overflow's
                // earliest event and pull the next horizon's worth in.
                debug_assert!(self.cur_pending.is_empty());
                self.ensure_overflow_sorted();
                let min = self.overflow.last()?.tick;
                if bound.is_some_and(|b| min > b) {
                    self.next_hint = Some(min);
                    return None;
                }
                debug_assert!(min >= self.epoch);
                self.epoch = min & !(BUCKET_WIDTH_PS - 1);
                self.cur_sorted = false;
                self.migrate_overflow();
                continue;
            }
            if !self.buckets[self.cursor].is_empty() || !self.cur_pending.is_empty() {
                if !self.cur_sorted {
                    // Pending only accumulates against a sorted bucket,
                    // so a first-touch sort never has a pending side.
                    debug_assert!(self.cur_pending.is_empty());
                    self.buckets[self.cursor].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cur_sorted = true;
                }
                if !self.cur_pending_sorted && !self.cur_pending.is_empty() {
                    self.cur_pending
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cur_pending_sorted = true;
                }
                // Two descending stacks: the earliest event is the
                // smaller of the two backs (ties cannot happen — seqs
                // are unique per queue — but prefer the main bucket
                // deterministically anyway).
                let main = self.buckets[self.cursor].last().map(Entry::key);
                let pend = self.cur_pending.last().map(Entry::key);
                let take_pending = match (main, pend) {
                    (Some(m), Some(p)) => p < m,
                    (None, Some(_)) => true,
                    _ => false,
                };
                let next_tick = match (main, pend) {
                    (Some(m), Some(p)) => m.min(p).0,
                    (Some(m), None) => m.0,
                    (None, Some(p)) => p.0,
                    (None, None) => unreachable!("checked nonempty"),
                };
                if bound.is_some_and(|b| next_tick > b) {
                    self.next_hint = Some(next_tick);
                    return None;
                }
                let e = if take_pending {
                    self.cur_pending.pop().expect("nonempty")
                } else {
                    self.buckets[self.cursor].pop().expect("nonempty")
                };
                self.ring_len -= 1;
                self.next_hint = None;
                return Some((Tick::from_ps(e.tick), e.seq, e.payload));
            }
            // Cursor bucket empty: advance one bucket. The horizon moves
            // with it, so check the overflow for newly-near events.
            self.cursor = (self.cursor + 1) & (BUCKETS - 1);
            self.epoch += BUCKET_WIDTH_PS;
            self.cur_sorted = false;
            self.migrate_overflow();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.pop_bounded(None).map(|(t, _, e)| (t, e))
    }

    /// Removes and returns the earliest event together with its
    /// tie-break sequence number.
    ///
    /// Pairs with [`push_at_seq`](Self::push_at_seq): popping with the
    /// sequence number lets a sharding scheduler move events between
    /// queues (or hand them back to a global queue) without disturbing
    /// the deterministic tie-break order.
    pub fn pop_seq(&mut self) -> Option<(Tick, u64, E)> {
        self.pop_bounded(None)
    }

    /// Like [`pop_before`](Self::pop_before), but also returns the
    /// event's tie-break sequence number.
    pub fn pop_seq_before(&mut self, t: Tick) -> Option<(Tick, u64, E)> {
        self.pop_bounded(Some(t.as_ps()))
    }

    /// Removes and returns the earliest event if its tick is `<= t`;
    /// otherwise leaves the queue untouched and returns `None`.
    ///
    /// This fuses the peek-then-pop pattern of event loops into one
    /// traversal: `while let Some((tick, ev)) = q.pop_before(t) { ... }`
    /// dispatches everything up to and including `t` without re-walking
    /// the queue per event.
    ///
    /// ```
    /// use sim_core::{EventQueue, Tick};
    /// let mut q = EventQueue::new();
    /// q.push(Tick::from_ns(5), 'a');
    /// q.push(Tick::from_ns(9), 'b');
    /// assert_eq!(q.pop_before(Tick::from_ns(7)), Some((Tick::from_ns(5), 'a')));
    /// assert_eq!(q.pop_before(Tick::from_ns(7)), None); // 'b' stays queued
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn pop_before(&mut self, t: Tick) -> Option<(Tick, E)> {
        self.pop_bounded(Some(t.as_ps())).map(|(t, _, e)| (t, e))
    }

    /// The timestamp of the earliest pending event.
    ///
    /// O(1) right after a bounded pop refused (the refusal caches the
    /// tick it stopped at, and pushes keep the cache exact); otherwise
    /// O(buckets) worst case — use [`pop_before`](Self::pop_before) in
    /// dispatch loops instead of peeking then popping.
    pub fn peek_tick(&self) -> Option<Tick> {
        if let Some(h) = self.next_hint {
            debug_assert_eq!(Some(Tick::from_ps(h)), self.peek_tick_scan());
            return Some(Tick::from_ps(h));
        }
        self.peek_tick_scan()
    }

    /// The slow path of [`peek_tick`](Self::peek_tick): scan the ring
    /// for the first non-empty bucket, else peek the overflow stack.
    fn peek_tick_scan(&self) -> Option<Tick> {
        if self.ring_len > 0 {
            for d in 0..BUCKETS {
                let idx = (self.cursor + d) & (BUCKETS - 1);
                let mut min = self.buckets[idx].iter().map(Entry::key).min();
                if idx == self.cursor {
                    // The cursor bucket's pending side counts too.
                    min = min
                        .into_iter()
                        .chain(self.cur_pending.iter().map(Entry::key))
                        .min();
                }
                if let Some(min) = min {
                    return Some(Tick::from_ps(min.0));
                }
            }
            unreachable!("ring_len > 0 but all buckets empty");
        }
        // Sorted stack: the minimum is at the back, O(1) like the old
        // heap peek. Only a dirty stack (pushes since the last ordered
        // access, and this is `&self` so no re-sort) needs the scan.
        if self.overflow_sorted {
            return self.overflow.last().map(|e| Tick::from_ps(e.tick));
        }
        self.overflow
            .iter()
            .map(Entry::key)
            .min()
            .map(|k| Tick::from_ps(k.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur_pending.clear();
        self.cur_pending_sorted = false;
        self.overflow.clear();
        self.overflow_sorted = true;
        self.ring_len = 0;
        self.cur_sorted = false;
        self.next_hint = None;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_tick", &self.peek_tick())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(30), 3);
        q.push(Tick::from_ns(10), 1);
        q.push(Tick::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Tick::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_tick(), None);
        q.push(Tick::from_ns(9), ());
        q.push(Tick::from_ns(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_tick(), Some(Tick::from_ns(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(10), 'a');
        q.push(Tick::from_ns(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(Tick::from_ns(1), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        // Far beyond the ~33 us ring horizon, plus one near event.
        q.push(Tick::from_us(500), 'f');
        q.push(Tick::from_us(2_000), 'g');
        q.push(Tick::from_ns(3), 'n');
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Tick::from_ns(3), 'n')));
        assert_eq!(q.peek_tick(), Some(Tick::from_us(500)));
        assert_eq!(q.pop(), Some((Tick::from_us(500), 'f')));
        assert_eq!(q.pop(), Some((Tick::from_us(2_000), 'g')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let far = Tick::from_us(100);
        for i in 0..50 {
            q.push(far, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn push_into_the_past_pops_first() {
        let mut q = EventQueue::new();
        q.push(Tick::from_us(40), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // epoch now ~40 us
        q.push(Tick::from_ns(1), 'p'); // far in the popped past
        q.push(Tick::from_us(41), 'b');
        assert_eq!(q.pop().unwrap().1, 'p');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn pop_before_bounds_and_preserves() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(10), 'a');
        q.push(Tick::from_ns(10), 'b');
        q.push(Tick::from_ns(20), 'c');
        q.push(Tick::from_us(200), 'z'); // overflow tier
        assert_eq!(q.pop_before(Tick::from_ns(5)), None);
        assert_eq!(
            q.pop_before(Tick::from_ns(10)),
            Some((Tick::from_ns(10), 'a'))
        );
        assert_eq!(
            q.pop_before(Tick::from_ns(10)),
            Some((Tick::from_ns(10), 'b'))
        );
        assert_eq!(q.pop_before(Tick::from_ns(10)), None);
        assert_eq!(q.pop_before(Tick::MAX), Some((Tick::from_ns(20), 'c')));
        assert_eq!(q.pop_before(Tick::from_us(199)), None); // 'z' stays
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(Tick::MAX), Some((Tick::from_us(200), 'z')));
        assert!(q.is_empty());
    }

    #[test]
    fn explicit_seqs_control_tie_break() {
        let mut q = EventQueue::new();
        q.push_at_seq(Tick::from_ns(1), 10, 'c');
        q.push_at_seq(Tick::from_ns(1), 3, 'b');
        q.push_at_seq(Tick::from_ns(1), 1, 'a');
        // A later plain push must order after every explicit seq.
        q.push(Tick::from_ns(1), 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn pop_seq_round_trips_between_queues() {
        // Splitting a stream across two queues and merging by (tick, seq)
        // reproduces the single-queue order — the sharding invariant.
        let mut global = EventQueue::new();
        for i in 0..100u64 {
            global.push(Tick::from_ns(i % 7), i);
        }
        let reference: Vec<u64> = {
            let mut g = EventQueue::new();
            for i in 0..100u64 {
                g.push(Tick::from_ns(i % 7), i);
            }
            std::iter::from_fn(|| g.pop().map(|(_, e)| e)).collect()
        };
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        while let Some((t, seq, e)) = global.pop_seq() {
            if e % 2 == 0 {
                a.push_at_seq(t, seq, e);
            } else {
                b.push_at_seq(t, seq, e);
            }
        }
        // Merge back and drain.
        let mut merged = EventQueue::new();
        while let Some((t, seq, e)) = a.pop_seq() {
            merged.push_at_seq(t, seq, e);
        }
        while let Some((t, seq, e)) = b.pop_seq() {
            merged.push_at_seq(t, seq, e);
        }
        let order: Vec<u64> = std::iter::from_fn(|| merged.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, reference);
    }

    #[test]
    fn pop_seq_before_bounds_like_pop_before() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(10), 'a');
        q.push(Tick::from_ns(20), 'b');
        assert_eq!(
            q.pop_seq_before(Tick::from_ns(15)),
            Some((Tick::from_ns(10), 0, 'a'))
        );
        assert_eq!(q.pop_seq_before(Tick::from_ns(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_after_refusal_is_exact_across_pushes_and_pops() {
        // A bounded-pop refusal caches the next tick; pushes min-merge
        // into it and pops invalidate it. (`peek_tick` cross-checks the
        // cache against the full scan under debug assertions.)
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(10), 'a');
        q.push(Tick::from_us(100), 'z'); // overflow tier
        assert_eq!(q.pop_before(Tick::from_ns(5)), None);
        assert_eq!(q.peek_tick(), Some(Tick::from_ns(10)));
        q.push(Tick::from_ns(3), 'b'); // earlier than the cached tick
        assert_eq!(q.peek_tick(), Some(Tick::from_ns(3)));
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.peek_tick(), Some(Tick::from_ns(10)));
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop_before(Tick::from_ns(50)), None); // overflow refusal
        assert_eq!(q.peek_tick(), Some(Tick::from_us(100)));
        assert_eq!(q.pop().unwrap().1, 'z');
        assert_eq!(q.peek_tick(), None);
    }

    #[test]
    fn dense_same_bucket_push_pop_interleave_stays_ordered() {
        // The pending/sorted split: pops from the cursor bucket sort it,
        // then pushes land on the pending side; the interleave must pop
        // the global (tick, seq) order exactly.
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.push(Tick::from_ps(1000 + i * 100), i);
        }
        let mut popped = Vec::new();
        // Pop two (sorts the bucket), then push earlier/later events
        // into the same (now sorted) bucket.
        popped.push(q.pop().unwrap());
        popped.push(q.pop().unwrap());
        q.push(Tick::from_ps(1150), 100); // between queued events
        q.push(Tick::from_ps(4000), 101); // later, same bucket
        q.push(Tick::from_ps(1150), 102); // tie with 100: FIFO
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        let ticks: Vec<u64> = popped.iter().map(|(t, _)| t.as_ps()).collect();
        assert!(
            ticks.windows(2).all(|w| w[0] <= w[1]),
            "order broke: {ticks:?}"
        );
        let payloads: Vec<u64> = popped.iter().map(|&(_, e)| e).collect();
        assert_eq!(payloads, vec![0, 1, 100, 102, 2, 3, 4, 5, 6, 7, 101]);
    }

    #[test]
    fn pending_side_respects_bounds_and_peek() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ps(100), 'a');
        assert_eq!(q.pop(), Some((Tick::from_ps(100), 'a'))); // sorts bucket 0
        q.push(Tick::from_ps(200), 'b'); // pending side of sorted bucket
        q.push(Tick::from_ps(150), 'c');
        assert_eq!(q.peek_tick(), Some(Tick::from_ps(150)));
        assert_eq!(q.pop_before(Tick::from_ps(140)), None);
        assert_eq!(q.peek_tick(), Some(Tick::from_ps(150)));
        assert_eq!(
            q.pop_before(Tick::from_ps(175)),
            Some((Tick::from_ps(150), 'c'))
        );
        assert_eq!(q.pop_before(Tick::from_ps(175)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Tick::from_ps(200), 'b')));
        assert!(q.is_empty());
    }

    #[test]
    fn dense_upfront_batch_drains_in_order() {
        // The stress_parallel driver shape: thousands of ~1 ns-spaced
        // events, pushed upfront and drained while follow-on events keep
        // landing in the cursor bucket.
        let mut q = EventQueue::new();
        for i in 0..4096u64 {
            q.push(Tick::from_ps(i * 1000), i);
        }
        let mut n = 0u64;
        let mut last = 0u64;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_ps() >= last);
            last = t.as_ps();
            n += 1;
            if n.is_multiple_of(3) && n < 2000 {
                // Follow-on work ~2 ns out: same or next bucket.
                q.push(Tick::from_ps(last + 2000), 1_000_000 + n);
            }
        }
        assert_eq!(n, 4096 + 666);
    }

    #[test]
    fn mixed_tiers_interleave_correctly() {
        let mut q = EventQueue::new();
        // Alternate near/far pushes, then drain: order must be global.
        for i in 0..200u64 {
            q.push(Tick::from_ns(i * 777 % 50_000), ('n', i));
            q.push(Tick::from_us(40 + i % 60), ('f', i));
        }
        let mut last = (Tick::ZERO, 0u64);
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last.0, "tick went backwards: {t} after {}", last.0);
            last = (t, 0);
            n += 1;
        }
        assert_eq!(n, 400);
    }
}

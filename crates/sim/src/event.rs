//! A stable-order event queue.

use crate::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    tick: Tick,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest tick pops first,
        // breaking ties by insertion order (FIFO) for determinism.
        other
            .tick
            .cmp(&self.tick)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO tie-break.
///
/// Events pushed at the same [`Tick`] pop in insertion order, which keeps
/// whole-system simulations reproducible run to run.
///
/// ```
/// use sim_core::{EventQueue, Tick};
/// let mut q = EventQueue::new();
/// q.push(Tick::from_ns(1), 'x');
/// q.push(Tick::from_ns(1), 'y');
/// assert_eq!(q.pop(), Some((Tick::from_ns(1), 'x')));
/// assert_eq!(q.pop(), Some((Tick::from_ns(1), 'y')));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `tick`.
    pub fn push(&mut self, tick: Tick, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { tick, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.heap.pop().map(|e| (e.tick, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_tick", &self.peek_tick())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(30), 3);
        q.push(Tick::from_ns(10), 1);
        q.push(Tick::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Tick::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_tick(), None);
        q.push(Tick::from_ns(9), ());
        q.push(Tick::from_ns(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_tick(), Some(Tick::from_ns(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Tick::from_ns(10), 'a');
        q.push(Tick::from_ns(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(Tick::from_ns(1), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
    }
}

//! The load/store-unit calibration microbenchmark.
//!
//! Paper §VI-A3: "we implemented a load/store unit (LSU) on the CXL-FPGA
//! and in SimCXL to generate host memory requests with configurable
//! access patterns." The latency tests issue 32 sequential 64 B loads
//! repeated 1000 times; the bandwidth tests issue 2048 requests.

use sim_core::SimRng;
use simcxl_mem::{PhysAddr, CACHELINE_BYTES};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsuOp {
    /// 64 B load.
    Load,
    /// 64 B store.
    Store,
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsuRequest {
    /// Target address (line-aligned).
    pub addr: PhysAddr,
    /// Operation.
    pub op: LsuOp,
}

/// Access patterns the LSU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsuPattern {
    /// `count` sequential lines starting at the base.
    Sequential {
        /// Number of requests.
        count: usize,
    },
    /// `count` requests cycling over a window of `lines` lines
    /// (window < cache size keeps everything cache-resident).
    Cyclic {
        /// Number of requests.
        count: usize,
        /// Lines in the window.
        lines: u64,
    },
    /// `count` uniformly random lines within `footprint` bytes.
    Random {
        /// Number of requests.
        count: usize,
        /// Footprint in bytes.
        footprint: u64,
        /// RNG seed.
        seed: u64,
    },
}

/// Generates a request stream at `base` with the given operation.
pub fn generate(base: PhysAddr, op: LsuOp, pattern: LsuPattern) -> Vec<LsuRequest> {
    match pattern {
        LsuPattern::Sequential { count } => (0..count as u64)
            .map(|i| LsuRequest {
                addr: base + i * CACHELINE_BYTES,
                op,
            })
            .collect(),
        LsuPattern::Cyclic { count, lines } => {
            assert!(lines > 0, "empty window");
            (0..count as u64)
                .map(|i| LsuRequest {
                    addr: base + (i % lines) * CACHELINE_BYTES,
                    op,
                })
                .collect()
        }
        LsuPattern::Random {
            count,
            footprint,
            seed,
        } => {
            let lines = footprint / CACHELINE_BYTES;
            assert!(lines > 0, "footprint too small");
            let mut rng = SimRng::new(seed);
            (0..count)
                .map(|_| LsuRequest {
                    addr: base + rng.below(lines) * CACHELINE_BYTES,
                    op,
                })
                .collect()
        }
    }
}

/// The paper's latency-test stream: 32 sequential 64 B loads.
pub fn latency_burst(base: PhysAddr) -> Vec<LsuRequest> {
    generate(base, LsuOp::Load, LsuPattern::Sequential { count: 32 })
}

/// The paper's bandwidth-test stream: 2048 loads (128 KB).
pub fn bandwidth_burst(base: PhysAddr) -> Vec<LsuRequest> {
    generate(base, LsuOp::Load, LsuPattern::Sequential { count: 2048 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_addresses_step_by_line() {
        let reqs = generate(
            PhysAddr::new(0x1000),
            LsuOp::Load,
            LsuPattern::Sequential { count: 4 },
        );
        let addrs: Vec<u64> = reqs.iter().map(|r| r.addr.raw()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
    }

    #[test]
    fn cyclic_wraps() {
        let reqs = generate(
            PhysAddr::new(0),
            LsuOp::Store,
            LsuPattern::Cyclic { count: 5, lines: 2 },
        );
        let addrs: Vec<u64> = reqs.iter().map(|r| r.addr.raw()).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64, 0]);
        assert!(reqs.iter().all(|r| r.op == LsuOp::Store));
    }

    #[test]
    fn random_within_footprint() {
        let reqs = generate(
            PhysAddr::new(0x4000),
            LsuOp::Load,
            LsuPattern::Random {
                count: 1000,
                footprint: 1 << 16,
                seed: 3,
            },
        );
        for r in &reqs {
            assert!(r.addr.raw() >= 0x4000 && r.addr.raw() < 0x4000 + (1 << 16));
            assert!(r.addr.is_line_aligned());
        }
    }

    #[test]
    fn paper_bursts_have_paper_sizes() {
        assert_eq!(latency_burst(PhysAddr::new(0)).len(), 32);
        let bw = bandwidth_burst(PhysAddr::new(0));
        assert_eq!(bw.len(), 2048);
        // 2048 lines = 128 KB, the paper's convergence point.
        assert_eq!(bw.len() as u64 * CACHELINE_BYTES, 128 * 1024);
    }
}

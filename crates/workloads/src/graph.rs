//! Graph traversal workloads (paper §VIII: "graph algorithms with
//! fine-grained random-access patterns offloaded to CXL accelerators can
//! benefit from the coherent CXL interconnect").

use sim_core::SimRng;
use simcxl_mem::PhysAddr;

/// A random graph in CSR (compressed sparse row) form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrGraph {
    /// Generates a uniform random graph with `nodes` vertices and roughly
    /// `degree` out-edges each.
    pub fn random(nodes: u32, degree: u32, seed: u64) -> Self {
        assert!(nodes > 1, "need at least two nodes");
        let mut rng = SimRng::new(seed);
        let mut offsets = Vec::with_capacity(nodes as usize + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for _ in 0..nodes {
            for _ in 0..degree {
                edges.push(rng.below(nodes as u64) as u32);
            }
            offsets.push(edges.len() as u32);
        }
        CsrGraph { offsets, edges }
    }

    /// Vertex count.
    pub fn nodes(&self) -> u32 {
        self.offsets.len() as u32 - 1
    }

    /// Edge count.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-neighbours of `v`.
    pub fn neighbours(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// BFS from `root`; returns the visit order.
    pub fn bfs(&self, root: u32) -> Vec<u32> {
        let mut seen = vec![false; self.nodes() as usize];
        let mut queue = std::collections::VecDeque::from([root]);
        let mut order = Vec::new();
        seen[root as usize] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &n in self.neighbours(v) {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    queue.push_back(n);
                }
            }
        }
        order
    }

    /// The memory-access address stream a BFS issues against a flat
    /// vertex-data array at `base` (8 B per vertex): one read per visited
    /// vertex plus one read per scanned edge — the fine-grained irregular
    /// pattern the paper highlights.
    pub fn bfs_address_stream(&self, root: u32, base: PhysAddr) -> Vec<PhysAddr> {
        let mut stream = Vec::new();
        for v in self.bfs(root) {
            stream.push(base + v as u64 * 8);
            for &n in self.neighbours(v) {
                stream.push(base + n as u64 * 8);
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let g = CsrGraph::random(100, 4, 9);
        assert_eq!(g.nodes(), 100);
        assert_eq!(g.edges(), 400);
        assert_eq!(g.neighbours(0).len(), 4);
    }

    #[test]
    fn bfs_visits_each_vertex_once() {
        let g = CsrGraph::random(200, 8, 10);
        let order = g.bfs(0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len(), "duplicate visits");
        // A degree-8 random graph on 200 nodes is almost surely connected.
        assert!(
            order.len() > 190,
            "unexpectedly disconnected: {}",
            order.len()
        );
    }

    #[test]
    fn address_stream_is_irregular() {
        let g = CsrGraph::random(512, 4, 11);
        let stream = g.bfs_address_stream(0, PhysAddr::new(0x1000));
        assert!(stream.len() > 512);
        // Measure sequentiality: consecutive addresses in the same line.
        let same_line = stream
            .windows(2)
            .filter(|w| w[0].line() == w[1].line())
            .count();
        let frac = same_line as f64 / stream.len() as f64;
        assert!(frac < 0.3, "stream too regular: {frac}");
    }

    #[test]
    fn deterministic() {
        let a = CsrGraph::random(64, 4, 3).bfs(0);
        let b = CsrGraph::random(64, 4, 3).bfs(0);
        assert_eq!(a, b);
    }
}

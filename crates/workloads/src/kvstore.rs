//! An in-memory key-value store workload (paper §VIII: "in-memory
//! key-value store operations (e.g., GET/PUT) offloaded to CXL
//! accelerators will benefit from lower-latency, fine-grained memory
//! accesses").
//!
//! The store is an open-addressing hash table laid out in a flat physical
//! region; GET/PUT traces follow a Zipf-like popularity skew, producing
//! the fine-grained irregular accesses the paper targets.

use sim_core::SimRng;
use simcxl_mem::PhysAddr;

/// One KV operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of a key.
    Get {
        /// Key id.
        key: u64,
    },
    /// Write the value of a key.
    Put {
        /// Key id.
        key: u64,
        /// New value.
        value: u64,
    },
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvConfig {
    /// Distinct keys.
    pub keys: u64,
    /// Operations to generate.
    pub ops: usize,
    /// Fraction of GETs (rest are PUTs).
    pub get_ratio: f64,
    /// Skew: probability mass on the hottest 10% of keys.
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            keys: 1 << 16,
            ops: 8192,
            get_ratio: 0.9,
            hot_fraction: 0.8,
            seed: 5,
        }
    }
}

/// Generates a GET/PUT trace with hot-key skew.
pub fn generate(cfg: KvConfig) -> Vec<KvOp> {
    assert!(cfg.keys > 10, "need more than ten keys");
    assert!((0.0..=1.0).contains(&cfg.get_ratio));
    assert!((0.0..=1.0).contains(&cfg.hot_fraction));
    let mut rng = SimRng::new(cfg.seed);
    let hot_keys = (cfg.keys / 10).max(1);
    (0..cfg.ops)
        .map(|_| {
            let key = if rng.chance(cfg.hot_fraction) {
                rng.below(hot_keys)
            } else {
                hot_keys + rng.below(cfg.keys - hot_keys)
            };
            if rng.chance(cfg.get_ratio) {
                KvOp::Get { key }
            } else {
                KvOp::Put {
                    key,
                    value: rng.next_u64(),
                }
            }
        })
        .collect()
}

/// Maps a key to its slot address in a flat table at `base` with 64 B
/// buckets (one line per bucket: tag + value + metadata).
pub fn slot_addr(base: PhysAddr, key: u64, buckets: u64) -> PhysAddr {
    // Fibonacci hashing: well distributed and cheap in hardware.
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16;
    base + (h % buckets) * 64
}

/// A functional reference store for validating offload engines.
#[derive(Debug, Default)]
pub struct RefStore {
    map: std::collections::HashMap<u64, u64>,
}

impl RefStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one op; returns the value a GET observes.
    pub fn apply(&mut self, op: KvOp) -> Option<u64> {
        match op {
            KvOp::Get { key } => self.map.get(&key).copied(),
            KvOp::Put { key, value } => {
                self.map.insert(key, value);
                None
            }
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_respected() {
        let ops = generate(KvConfig {
            ops: 10_000,
            ..KvConfig::default()
        });
        let gets = ops.iter().filter(|o| matches!(o, KvOp::Get { .. })).count();
        let ratio = gets as f64 / ops.len() as f64;
        assert!((ratio - 0.9).abs() < 0.02, "get ratio {ratio}");
    }

    #[test]
    fn skew_concentrates_on_hot_keys() {
        let cfg = KvConfig::default();
        let ops = generate(cfg);
        let hot_keys = cfg.keys / 10;
        let hot = ops
            .iter()
            .filter(|o| match o {
                KvOp::Get { key } | KvOp::Put { key, .. } => *key < hot_keys,
            })
            .count();
        let frac = hot as f64 / ops.len() as f64;
        assert!(
            (frac - cfg.hot_fraction).abs() < 0.03,
            "hot fraction {frac}"
        );
    }

    #[test]
    fn slots_are_line_aligned_and_bounded() {
        let base = PhysAddr::new(0x2000_0000);
        for key in 0..1000 {
            let a = slot_addr(base, key, 4096);
            assert!(a.is_line_aligned());
            assert!(a.raw() < base.raw() + 4096 * 64);
        }
    }

    #[test]
    fn ref_store_semantics() {
        let mut s = RefStore::new();
        assert_eq!(s.apply(KvOp::Get { key: 1 }), None);
        s.apply(KvOp::Put { key: 1, value: 42 });
        assert_eq!(s.apply(KvOp::Get { key: 1 }), Some(42));
        assert_eq!(s.len(), 1);
    }
}

//! The CircusTent atomic-memory-operation patterns.
//!
//! CircusTent \[41\] measures atomic-operation throughput under six access
//! patterns. The paper offloads them as remote atomic operations (RAOs)
//! to the NIC (Fig. 17). The patterns are defined by their index
//! recurrences over a shared array of 8-byte elements:
//!
//! * **RAND** — uniformly random element per op.
//! * **STRIDE1** — sequential elements (seven of every eight ops land in
//!   an already-fetched 64 B line).
//! * **CENTRAL** — every op targets element 0 (a lock/sequencer hotspot).
//! * **SCATTER** — sequential index-array read plus a random-target AMO.
//! * **GATHER** — random-source AMO plus a sequential-destination AMO.
//! * **SG** — random source and random destination per op.

use sim_core::SimRng;
use simcxl_coherence::AtomicKind;
use simcxl_mem::PhysAddr;

/// One remote atomic operation in a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaoOp {
    /// Target address (8-byte aligned).
    pub addr: PhysAddr,
    /// Atomic kind.
    pub kind: AtomicKind,
    /// Operand (addend / compare value).
    pub operand: u64,
}

/// The six patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtPattern {
    /// Uniformly random targets.
    Rand,
    /// Sequential 8-byte elements.
    Stride1,
    /// Single hotspot element.
    Central,
    /// Scatter: sequential index read + random target update.
    Scatter,
    /// Gather: random source + sequential destination.
    Gather,
    /// Scatter-gather: random source + random destination.
    Sg,
}

impl CtPattern {
    /// All patterns in the paper's Fig. 17 order.
    pub fn all() -> [CtPattern; 6] {
        [
            CtPattern::Rand,
            CtPattern::Stride1,
            CtPattern::Central,
            CtPattern::Sg,
            CtPattern::Scatter,
            CtPattern::Gather,
        ]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            CtPattern::Rand => "RAND",
            CtPattern::Stride1 => "STRIDE1",
            CtPattern::Central => "CENTRAL",
            CtPattern::Scatter => "SCATTER",
            CtPattern::Gather => "GATHER",
            CtPattern::Sg => "SG",
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtConfig {
    /// Number of atomic operations to generate.
    pub ops: usize,
    /// Base physical address of the shared array.
    pub base: PhysAddr,
    /// Shared-array footprint in bytes (power of two recommended).
    pub footprint: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CtConfig {
    fn default() -> Self {
        CtConfig {
            ops: 4096,
            base: PhysAddr::new(0x1000_0000),
            footprint: 16 << 20,
            seed: 1,
        }
    }
}

/// Generates the RAO stream for `pattern`.
pub fn generate(pattern: CtPattern, cfg: CtConfig) -> Vec<RaoOp> {
    assert!(cfg.ops > 0, "empty op stream");
    assert!(cfg.footprint >= 64, "footprint too small");
    let elems = cfg.footprint / 8;
    let mut rng = SimRng::new(cfg.seed);
    let rand_elem = |rng: &mut SimRng| rng.below(elems);
    let faa = |addr: u64| RaoOp {
        addr: PhysAddr::new(addr),
        kind: AtomicKind::FetchAdd,
        operand: 1,
    };
    let mut ops = Vec::with_capacity(cfg.ops);
    match pattern {
        CtPattern::Rand => {
            for _ in 0..cfg.ops {
                ops.push(faa(cfg.base.raw() + rand_elem(&mut rng) * 8));
            }
        }
        CtPattern::Stride1 => {
            for i in 0..cfg.ops as u64 {
                ops.push(faa(cfg.base.raw() + (i % elems) * 8));
            }
        }
        CtPattern::Central => {
            for _ in 0..cfg.ops {
                ops.push(faa(cfg.base.raw()));
            }
        }
        CtPattern::Scatter => {
            // Index array occupies the first half (read sequentially, so
            // line-local), targets land in the second half (random).
            let half = elems / 2;
            for i in 0..cfg.ops as u64 {
                if i % 2 == 0 {
                    ops.push(faa(cfg.base.raw() + (i / 2 % half) * 8));
                } else {
                    ops.push(faa(cfg.base.raw() + (half + rng.below(half)) * 8));
                }
            }
        }
        CtPattern::Gather => {
            let half = elems / 2;
            for i in 0..cfg.ops as u64 {
                if i % 2 == 0 {
                    ops.push(faa(cfg.base.raw() + (half + rng.below(half)) * 8));
                } else {
                    ops.push(faa(cfg.base.raw() + (i / 2 % half) * 8));
                }
            }
        }
        CtPattern::Sg => {
            let half = elems / 2;
            for i in 0..cfg.ops as u64 {
                // Two of every three ops are random (src + dst), one is
                // the sequential index-array access.
                if i % 3 == 0 {
                    ops.push(faa(cfg.base.raw() + (i / 3 % half) * 8));
                } else {
                    ops.push(faa(cfg.base.raw() + rng.below(elems) * 8));
                }
            }
        }
    }
    ops
}

/// Fraction of ops whose 64 B line was touched by one of the previous
/// `window` ops (a proxy for HMC hit rate; diagnostic).
pub fn line_locality(ops: &[RaoOp], window: usize) -> f64 {
    let mut hits = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let line = op.addr.line();
        let lo = i.saturating_sub(window);
        if ops[lo..i].iter().any(|p| p.addr.line() == line) {
            hits += 1;
        }
    }
    hits as f64 / ops.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CtConfig {
        CtConfig {
            ops: 2048,
            ..CtConfig::default()
        }
    }

    #[test]
    fn all_targets_in_footprint() {
        for p in CtPattern::all() {
            for op in generate(p, cfg()) {
                assert!(op.addr >= cfg().base);
                assert!(op.addr.raw() < cfg().base.raw() + cfg().footprint);
                assert_eq!(op.addr.raw() % 8, 0, "{p:?} misaligned");
            }
        }
    }

    #[test]
    fn central_hits_one_line() {
        let ops = generate(CtPattern::Central, cfg());
        assert!(ops.iter().all(|o| o.addr == cfg().base));
        assert!(line_locality(&ops, 64) > 0.99);
    }

    #[test]
    fn stride1_is_line_local() {
        let ops = generate(CtPattern::Stride1, cfg());
        let loc = line_locality(&ops, 8);
        // 7 of 8 ops reuse the line.
        assert!((loc - 0.875).abs() < 0.01, "stride locality {loc}");
    }

    #[test]
    fn rand_has_low_locality() {
        let ops = generate(CtPattern::Rand, cfg());
        assert!(line_locality(&ops, 64) < 0.01);
    }

    #[test]
    fn locality_ordering_matches_paper() {
        let l = |p| line_locality(&generate(p, cfg()), 64);
        let rand = l(CtPattern::Rand);
        let scatter = l(CtPattern::Scatter);
        let stride = l(CtPattern::Stride1);
        let central = l(CtPattern::Central);
        assert!(central > stride, "central {central} vs stride {stride}");
        assert!(stride > scatter, "stride {stride} vs scatter {scatter}");
        assert!(scatter > rand, "scatter {scatter} vs rand {rand}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            generate(CtPattern::Sg, cfg()),
            generate(CtPattern::Sg, cfg())
        );
        let other = CtConfig { seed: 99, ..cfg() };
        assert_ne!(
            generate(CtPattern::Sg, cfg()),
            generate(CtPattern::Sg, other)
        );
    }
}

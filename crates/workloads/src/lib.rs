//! Workload generators for the Cohet evaluation.
//!
//! * [`circustent`] — the six atomic-memory-operation patterns of the
//!   CircusTent suite \[41\] used in the paper's Fig. 17 (RAND, STRIDE1,
//!   CENTRAL, SG, SCATTER, GATHER).
//! * [`lsu`] — the load/store-unit microbenchmark the paper implements on
//!   the CXL-FPGA to calibrate latency/bandwidth (Figs. 12–16).
//! * [`axpy`] — the AXPY kernel from the programming-model comparison
//!   (Fig. 4).
//! * [`kvstore`] and [`graph`] — the in-memory KV-store and graph
//!   traversal workloads the paper names as future Cohet applications
//!   (§VIII), used by the extension benches.
//! * [`scenario`] — the declarative million-client scenario engine:
//!   phased traffic (ramp / steady / burst / hot-key storm), open- and
//!   closed-loop arrivals, and per-client session state machines
//!   multiplexed over a handful of real cache agents.

pub mod axpy;
pub mod circustent;
pub mod graph;
pub mod kvstore;
pub mod lsu;
pub mod scenario;

pub use circustent::{CtConfig, CtPattern, RaoOp};
pub use lsu::{LsuOp, LsuPattern, LsuRequest};
pub use scenario::{ScenarioOutcome, ScenarioSpec};

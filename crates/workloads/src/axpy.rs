//! The AXPY kernel (`Y = a*X + Y`) from the paper's programming-model
//! comparison (Fig. 4).
//!
//! Values travel through the simulated memory system as `u64` words, so
//! the kernel works on `f64` bit patterns.

/// Reference (golden) AXPY on plain slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn golden(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "AXPY length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// One AXPY element step on raw bit patterns (what the simulated XPU
/// compute units execute per element).
pub fn step_bits(a: f64, x_bits: u64, y_bits: u64) -> u64 {
    (a * f64::from_bits(x_bits) + f64::from_bits(y_bits)).to_bits()
}

/// Deterministic input data for an `n`-element AXPY problem.
pub fn inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 + 1.0).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64) * -0.25 + 2.0).collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matches_manual() {
        let (x, mut y) = inputs(4);
        golden(2.0, &x, &mut y);
        // y[i] = 2*(0.5 i + 1) + (-0.25 i + 2) = 0.75 i + 4
        for (i, v) in y.iter().enumerate() {
            assert!((v - (0.75 * i as f64 + 4.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn step_bits_matches_golden() {
        let (x, y0) = inputs(64);
        let mut y = y0.clone();
        golden(3.5, &x, &mut y);
        for i in 0..64 {
            let bits = step_bits(3.5, x[i].to_bits(), y0[i].to_bits());
            assert_eq!(bits, y[i].to_bits(), "element {i}");
        }
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut y = [0.0; 2];
        golden(1.0, &[1.0, 2.0, 3.0], &mut y);
    }
}

//! Phased traffic shapes and their deterministic arrival schedules.
//!
//! A scenario is a sequence of phases — ramp-up, steady state, a burst,
//! an adversarial hot-key storm — each with a simulated duration and a
//! [`Traffic`] shape. Arrival instants are computed by inverting the
//! shape's cumulative rate integral, so the schedule is a pure function
//! of the spec: no RNG draw is spent on arrival timing, and determinism
//! holds by construction.

use sim_core::Tick;

/// The traffic shape of one phase. Rates are *relative*: the scenario's
/// total client population is split across phases in proportion to each
/// phase's `mean_rate() * duration`, then each phase schedules its
/// share according to its shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Linearly ramping arrival rate, `from` to `to`, across the phase.
    Ramp {
        /// Relative rate at the start of the phase.
        from: f64,
        /// Relative rate at the end of the phase.
        to: f64,
    },
    /// Constant arrival rate.
    Steady {
        /// Relative rate.
        rate: f64,
    },
    /// Thundering herd: the phase's whole population arrives uniformly
    /// within the first quarter of the phase, then silence.
    Burst {
        /// Relative rate (still weighted over the whole duration).
        rate: f64,
    },
    /// Steady arrivals whose key choice is skewed onto a small hot set
    /// (adversarial contention: every client hammers the same lines).
    HotKey {
        /// Relative rate.
        rate: f64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability mass on the hot set.
        hot_fraction: f64,
    },
    /// Day/night oscillation: the rate sweeps `low → high → low`
    /// linearly, `cycles` times across the phase (a triangle wave).
    /// Long-running degradation scenarios use this to overlap fault
    /// windows with both peak and trough load.
    Diurnal {
        /// Relative rate in the troughs.
        low: f64,
        /// Relative rate at the peaks.
        high: f64,
        /// Full low→high→low cycles across the phase (≥ 1).
        cycles: u32,
    },
}

impl Traffic {
    /// Mean relative rate over the phase (the phase's share weight).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Traffic::Ramp { from, to } => (from + to) / 2.0,
            Traffic::Diurnal { low, high, .. } => (low + high) / 2.0,
            Traffic::Steady { rate } | Traffic::Burst { rate } | Traffic::HotKey { rate, .. } => {
                rate
            }
        }
    }

    /// Hot-set override this shape imposes on key selection.
    pub fn hot(&self) -> Option<(u64, f64)> {
        match *self {
            Traffic::HotKey {
                hot_keys,
                hot_fraction,
                ..
            } => Some((hot_keys, hot_fraction)),
            _ => None,
        }
    }

    /// Offset (from the phase start) of arrival `j` of `n`, for a phase
    /// of duration `d` — the inverse of the shape's normalized
    /// cumulative rate at quantile `(j + ½) / n`.
    pub fn arrival_offset(&self, j: u64, n: u64, d: Tick) -> Tick {
        assert!(j < n, "arrival index out of range");
        let frac = (j as f64 + 0.5) / n as f64;
        let d_ns = d.as_ns_f64();
        let at_ns = match *self {
            Traffic::Steady { .. } | Traffic::HotKey { .. } => frac * d_ns,
            Traffic::Burst { .. } => frac * d_ns * 0.25,
            Traffic::Ramp { from, to } => invert_ramp(from, to, d_ns, frac),
            Traffic::Diurnal { low, high, cycles } => {
                assert!(cycles >= 1, "a diurnal shape needs at least one cycle");
                // 2·cycles half-cycles, each a linear ramp between low
                // and high. Every half-cycle carries the same mass
                // (duration · (low+high)/2), so the quantile picks the
                // half-cycle uniformly and the ramp inversion finishes
                // the job inside it.
                let segments = 2 * u64::from(cycles);
                let seg_ns = d_ns / segments as f64;
                let s = ((frac * segments as f64) as u64).min(segments - 1);
                let local = frac * segments as f64 - s as f64;
                let (from, to) = if s.is_multiple_of(2) {
                    (low, high)
                } else {
                    (high, low)
                };
                s as f64 * seg_ns + invert_ramp(from, to, seg_ns, local)
            }
        };
        Tick::from_ns_f64(at_ns)
    }
}

/// Instant (in ns) where fraction `frac` of a linear `from → to` ramp's
/// mass over `d_ns` has arrived: solve
/// `F(t) = (from·t + (to-from)·t²/2D) / (D·(from+to)/2) = frac` for `t`.
fn invert_ramp(from: f64, to: f64, d_ns: f64, frac: f64) -> f64 {
    let a = (to - from) / (2.0 * d_ns);
    let b = from;
    let c = frac * d_ns * (from + to) / 2.0;
    if a.abs() < f64::EPSILON {
        c / b
    } else {
        (-b + (b * b + 4.0 * a * c).sqrt()) / (2.0 * a)
    }
}

/// One phase: a name (reported verbatim), a simulated duration, and a
/// traffic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name, carried into the per-phase report.
    pub name: String,
    /// Simulated duration of the phase.
    pub duration: Tick,
    /// Arrival shape.
    pub traffic: Traffic,
}

impl PhaseSpec {
    /// Creates a phase.
    pub fn new(name: impl Into<String>, duration: Tick, traffic: Traffic) -> Self {
        let duration_ok = duration > Tick::ZERO;
        assert!(duration_ok, "a phase needs a nonzero duration");
        PhaseSpec {
            name: name.into(),
            duration,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_arrivals_form_a_uniform_grid() {
        let t = Traffic::Steady { rate: 1.0 };
        let d = Tick::from_us(100);
        let offs: Vec<f64> = (0..4)
            .map(|j| t.arrival_offset(j, 4, d).as_ns_f64())
            .collect();
        assert_eq!(offs, vec![12_500.0, 37_500.0, 62_500.0, 87_500.0]);
    }

    #[test]
    fn burst_compresses_into_first_quarter() {
        let t = Traffic::Burst { rate: 1.0 };
        let d = Tick::from_us(100);
        for j in 0..100 {
            assert!(t.arrival_offset(j, 100, d) <= Tick::from_us(25));
        }
    }

    #[test]
    fn ramp_arrivals_densify_toward_the_end() {
        let t = Traffic::Ramp { from: 0.0, to: 2.0 };
        let d = Tick::from_us(100);
        // Quantile 0.25 of a 0->r ramp lands at t = D·√0.25 = D/2.
        let q25 = t.arrival_offset(0, 2, d); // frac = 0.25
        assert!(
            (q25.as_ns_f64() - d.as_ns_f64() / 2.0).abs() < 2.0,
            "{q25:?}"
        );
        // Monotone and within the phase.
        let offs: Vec<f64> = (0..50)
            .map(|j| t.arrival_offset(j, 50, d).as_ns_f64())
            .collect();
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*offs.last().unwrap() <= d.as_ns_f64());
        // Back half holds more arrivals than the front half.
        let front = offs.iter().filter(|&&o| o < d.as_ns_f64() / 2.0).count();
        assert!(front < 25, "front half holds {front} of 50");
    }

    #[test]
    fn flat_ramp_degenerates_to_steady() {
        let ramp = Traffic::Ramp { from: 3.0, to: 3.0 };
        let steady = Traffic::Steady { rate: 3.0 };
        let d = Tick::from_us(10);
        for j in 0..10 {
            let a = ramp.arrival_offset(j, 10, d).as_ns_f64();
            let b = steady.arrival_offset(j, 10, d).as_ns_f64();
            assert!((a - b).abs() < 1.0, "{a} vs {b}");
        }
    }

    #[test]
    fn diurnal_arrivals_cluster_at_peaks() {
        // Two cycles over 100us: peaks at 25us and 75us, troughs at 0,
        // 50us, 100us. With low = 0 the density at the troughs vanishes.
        let t = Traffic::Diurnal {
            low: 0.0,
            high: 2.0,
            cycles: 2,
        };
        let d = Tick::from_us(100);
        let offs: Vec<f64> = (0..200)
            .map(|j| t.arrival_offset(j, 200, d).as_ns_f64())
            .collect();
        for w in offs.windows(2) {
            assert!(w[0] <= w[1], "offsets must be monotone");
        }
        assert!(*offs.last().unwrap() <= d.as_ns_f64());
        let near = |center_us: f64| {
            offs.iter()
                .filter(|&&o| (o - center_us * 1_000.0).abs() < 10_000.0)
                .count()
        };
        // A 20us band around each peak vs the same band at the middle
        // trough: peak bands must hold clearly more arrivals.
        assert!(
            near(25.0) > 2 * near(50.0),
            "{} vs {}",
            near(25.0),
            near(50.0)
        );
        assert!(near(75.0) > 2 * near(50.0));
    }

    #[test]
    fn flat_diurnal_degenerates_to_steady() {
        let diurnal = Traffic::Diurnal {
            low: 3.0,
            high: 3.0,
            cycles: 4,
        };
        let steady = Traffic::Steady { rate: 3.0 };
        let d = Tick::from_us(10);
        for j in 0..16 {
            let a = diurnal.arrival_offset(j, 16, d).as_ns_f64();
            let b = steady.arrival_offset(j, 16, d).as_ns_f64();
            assert!((a - b).abs() < 1.0, "{a} vs {b}");
        }
    }

    #[test]
    fn one_cycle_first_half_matches_rising_ramp() {
        // The first half-cycle of a 1-cycle diurnal IS a low→high ramp
        // over half the phase holding half the mass.
        let diurnal = Traffic::Diurnal {
            low: 1.0,
            high: 5.0,
            cycles: 1,
        };
        let ramp = Traffic::Ramp { from: 1.0, to: 5.0 };
        let d = Tick::from_us(100);
        for j in 0..8 {
            // Quantiles 0..0.5 of the diurnal = quantiles 0..1 of the
            // ramp, compressed into [0, d/2).
            let a = diurnal.arrival_offset(j, 16, d).as_ns_f64();
            let b = ramp.arrival_offset(j, 8, Tick::from_us(50)).as_ns_f64();
            assert!((a - b).abs() < 2.0, "{a} vs {b}");
        }
    }

    #[test]
    fn mean_rates_weight_phases() {
        assert_eq!(Traffic::Ramp { from: 0.0, to: 4.0 }.mean_rate(), 2.0);
        assert_eq!(Traffic::Steady { rate: 5.0 }.mean_rate(), 5.0);
        assert_eq!(
            Traffic::Diurnal {
                low: 1.0,
                high: 3.0,
                cycles: 2
            }
            .mean_rate(),
            2.0
        );
        assert!(Traffic::HotKey {
            rate: 1.0,
            hot_keys: 4,
            hot_fraction: 0.9
        }
        .hot()
        .is_some());
    }
}

//! Phased traffic shapes and their deterministic arrival schedules.
//!
//! A scenario is a sequence of phases — ramp-up, steady state, a burst,
//! an adversarial hot-key storm — each with a simulated duration and a
//! [`Traffic`] shape. Arrival instants are computed by inverting the
//! shape's cumulative rate integral, so the schedule is a pure function
//! of the spec: no RNG draw is spent on arrival timing, and determinism
//! holds by construction.

use sim_core::Tick;

/// The traffic shape of one phase. Rates are *relative*: the scenario's
/// total client population is split across phases in proportion to each
/// phase's `mean_rate() * duration`, then each phase schedules its
/// share according to its shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Linearly ramping arrival rate, `from` to `to`, across the phase.
    Ramp {
        /// Relative rate at the start of the phase.
        from: f64,
        /// Relative rate at the end of the phase.
        to: f64,
    },
    /// Constant arrival rate.
    Steady {
        /// Relative rate.
        rate: f64,
    },
    /// Thundering herd: the phase's whole population arrives uniformly
    /// within the first quarter of the phase, then silence.
    Burst {
        /// Relative rate (still weighted over the whole duration).
        rate: f64,
    },
    /// Steady arrivals whose key choice is skewed onto a small hot set
    /// (adversarial contention: every client hammers the same lines).
    HotKey {
        /// Relative rate.
        rate: f64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability mass on the hot set.
        hot_fraction: f64,
    },
}

impl Traffic {
    /// Mean relative rate over the phase (the phase's share weight).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Traffic::Ramp { from, to } => (from + to) / 2.0,
            Traffic::Steady { rate } | Traffic::Burst { rate } | Traffic::HotKey { rate, .. } => {
                rate
            }
        }
    }

    /// Hot-set override this shape imposes on key selection.
    pub fn hot(&self) -> Option<(u64, f64)> {
        match *self {
            Traffic::HotKey {
                hot_keys,
                hot_fraction,
                ..
            } => Some((hot_keys, hot_fraction)),
            _ => None,
        }
    }

    /// Offset (from the phase start) of arrival `j` of `n`, for a phase
    /// of duration `d` — the inverse of the shape's normalized
    /// cumulative rate at quantile `(j + ½) / n`.
    pub fn arrival_offset(&self, j: u64, n: u64, d: Tick) -> Tick {
        assert!(j < n, "arrival index out of range");
        let frac = (j as f64 + 0.5) / n as f64;
        let d_ns = d.as_ns_f64();
        let at_ns = match *self {
            Traffic::Steady { .. } | Traffic::HotKey { .. } => frac * d_ns,
            Traffic::Burst { .. } => frac * d_ns * 0.25,
            Traffic::Ramp { from, to } => {
                // F(t) = (from·t + (to-from)·t²/2D) / (D·(from+to)/2);
                // solve F(t) = frac for t.
                let a = (to - from) / (2.0 * d_ns);
                let b = from;
                let c = frac * d_ns * (from + to) / 2.0;
                if a.abs() < f64::EPSILON {
                    c / b
                } else {
                    (-b + (b * b + 4.0 * a * c).sqrt()) / (2.0 * a)
                }
            }
        };
        Tick::from_ns_f64(at_ns)
    }
}

/// One phase: a name (reported verbatim), a simulated duration, and a
/// traffic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name, carried into the per-phase report.
    pub name: String,
    /// Simulated duration of the phase.
    pub duration: Tick,
    /// Arrival shape.
    pub traffic: Traffic,
}

impl PhaseSpec {
    /// Creates a phase.
    pub fn new(name: impl Into<String>, duration: Tick, traffic: Traffic) -> Self {
        let duration_ok = duration > Tick::ZERO;
        assert!(duration_ok, "a phase needs a nonzero duration");
        PhaseSpec {
            name: name.into(),
            duration,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_arrivals_form_a_uniform_grid() {
        let t = Traffic::Steady { rate: 1.0 };
        let d = Tick::from_us(100);
        let offs: Vec<f64> = (0..4)
            .map(|j| t.arrival_offset(j, 4, d).as_ns_f64())
            .collect();
        assert_eq!(offs, vec![12_500.0, 37_500.0, 62_500.0, 87_500.0]);
    }

    #[test]
    fn burst_compresses_into_first_quarter() {
        let t = Traffic::Burst { rate: 1.0 };
        let d = Tick::from_us(100);
        for j in 0..100 {
            assert!(t.arrival_offset(j, 100, d) <= Tick::from_us(25));
        }
    }

    #[test]
    fn ramp_arrivals_densify_toward_the_end() {
        let t = Traffic::Ramp { from: 0.0, to: 2.0 };
        let d = Tick::from_us(100);
        // Quantile 0.25 of a 0->r ramp lands at t = D·√0.25 = D/2.
        let q25 = t.arrival_offset(0, 2, d); // frac = 0.25
        assert!(
            (q25.as_ns_f64() - d.as_ns_f64() / 2.0).abs() < 2.0,
            "{q25:?}"
        );
        // Monotone and within the phase.
        let offs: Vec<f64> = (0..50)
            .map(|j| t.arrival_offset(j, 50, d).as_ns_f64())
            .collect();
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*offs.last().unwrap() <= d.as_ns_f64());
        // Back half holds more arrivals than the front half.
        let front = offs.iter().filter(|&&o| o < d.as_ns_f64() / 2.0).count();
        assert!(front < 25, "front half holds {front} of 50");
    }

    #[test]
    fn flat_ramp_degenerates_to_steady() {
        let ramp = Traffic::Ramp { from: 3.0, to: 3.0 };
        let steady = Traffic::Steady { rate: 3.0 };
        let d = Tick::from_us(10);
        for j in 0..10 {
            let a = ramp.arrival_offset(j, 10, d).as_ns_f64();
            let b = steady.arrival_offset(j, 10, d).as_ns_f64();
            assert!((a - b).abs() < 1.0, "{a} vs {b}");
        }
    }

    #[test]
    fn mean_rates_weight_phases() {
        assert_eq!(Traffic::Ramp { from: 0.0, to: 4.0 }.mean_rate(), 2.0);
        assert_eq!(Traffic::Steady { rate: 5.0 }.mean_rate(), 5.0);
        assert!(Traffic::HotKey {
            rate: 1.0,
            hot_keys: 4,
            hot_fraction: 0.9
        }
        .hot()
        .is_some());
    }
}

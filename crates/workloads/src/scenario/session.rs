//! Lightweight logical-client session records.
//!
//! A scenario multiplexes millions of logical clients over a handful of
//! real cache agents; each live client is one small [`Session`] record
//! in a slab. Slots are recycled as sessions finish, so resident memory
//! tracks *concurrent* sessions (bounded by latency × arrival rate, or
//! the closed-loop concurrency), not the total population.

use super::machine::State;
use sim_core::Tick;

/// One live logical client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// Logical client id (unique across the scenario).
    pub client: u64,
    /// Phase this session is attributed to.
    pub phase: u16,
    /// Current machine state.
    pub state: State,
    /// Steps executed (compared against the machine's safety cap).
    pub steps: u32,
    /// Arrival time.
    pub started: Tick,
    /// Key touched by the most recent access.
    pub last_key: u64,
    /// Value observed by the most recent access.
    pub last_value: u64,
}

/// A recycling slab of sessions. Indices (`u32` slots) stay stable for
/// a session's lifetime and are reused afterwards.
#[derive(Debug, Default)]
pub struct SessionSlab {
    slots: Vec<Session>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl SessionSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `session`, returning its slot.
    pub fn insert(&mut self, session: Session) -> u32 {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = session;
                slot
            }
            None => {
                self.slots.push(session);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// The session in `slot`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slot (freed slots are *not* detected —
    /// the executor's request maps are the only slot holders).
    pub fn get_mut(&mut self, slot: u32) -> &mut Session {
        &mut self.slots[slot as usize]
    }

    /// Removes the session in `slot`, returning it and recycling the
    /// slot.
    pub fn remove(&mut self, slot: u32) -> Session {
        self.live -= 1;
        self.free.push(slot);
        self.slots[slot as usize]
    }

    /// Currently live sessions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak concurrent sessions seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(client: u64) -> Session {
        Session {
            client,
            phase: 0,
            state: State(0),
            steps: 0,
            started: Tick::ZERO,
            last_key: 0,
            last_value: 0,
        }
    }

    #[test]
    fn slots_recycle() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(session(1));
        let b = slab.insert(session(2));
        assert_ne!(a, b);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.remove(a).client, 1);
        let c = slab.insert(session(3));
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(slab.get_mut(c).client, 3);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.peak(), 2);
    }
}

//! Declarative million-client scenario engine.
//!
//! The hotpath stress harness drives the protocol engine with one flat
//! request stream; real deployments look different — *populations* of
//! clients arriving over time, each running a short session against a
//! shared store, with ramps, bursts, and adversarial hot-key storms.
//! This module turns that shape into data:
//!
//! * [`ScenarioSpec`] — the declarative description: client population,
//!   [`Arrival`] discipline (open or closed loop), per-client
//!   [`MachineSpec`] session machine, key space, and a sequence of
//!   [`PhaseSpec`]s with [`Traffic`] shapes.
//! * [`TransitionTable`] — the session machine engine: a
//!   `State -> Handler` table with terminal states and a global safety
//!   cap, so arbitrary custom sessions plug in without touching the
//!   executor.
//! * [`run`] / [`run_with_machine`] — the executor: multiplexes
//!   millions of logical sessions as lightweight records over a handful
//!   of real cache agents, interleaving a scenario-side calendar queue
//!   with the engine's event loop.
//! * [`ScenarioOutcome`] — per-phase p50/p95/p99 latency, throughput,
//!   and the order-sensitive completion checksum (same folding as the
//!   hotpath determinism canary).
//!
//! Everything downstream of the spec is deterministic: arrival times
//! are computed by inverting traffic-shape integrals (no sampling), and
//! every random draw comes from one [`sim_core::SimRng`] seeded by the
//! spec. Identical specs reproduce identical checksums at any
//! `parallel` thread count.

mod exec;
mod machine;
mod phase;
mod report;
mod session;
mod spec;

pub use exec::{run, run_from, run_with_machine};
pub use machine::{Action, Handler, State, StepCtx, TransitionTable};
pub use phase::{PhaseSpec, Traffic};
pub use report::{PhaseReport, ScenarioOutcome};
pub use session::{Session, SessionSlab};
pub use spec::{hot_key_storm, ramp_then_burst, steady_closed, Arrival, MachineSpec, ScenarioSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Tick;
    use simcxl_coherence::{AgentId, CacheConfig, ProtocolEngine, Topology};
    use simcxl_mem::{AddrRange, DramConfig, DramKind, MemoryInterface, PhysAddr};

    fn engine_for(spec: &ScenarioSpec, homes: usize) -> (ProtocolEngine, Vec<AgentId>) {
        let mut mi = MemoryInterface::new();
        mi.add_memory(
            AddrRange::new(PhysAddr::new(0), 1 << 30),
            DramConfig::preset(DramKind::Ddr5_4400),
            Tick::ZERO,
        );
        let mut eng = ProtocolEngine::builder()
            .memory(mi)
            .topology(if homes == 1 {
                Topology::single()
            } else {
                Topology::interleaved(homes, 4096)
            })
            .build();
        let agents = (0..spec.agents)
            .map(|_| eng.add_cache(CacheConfig::cpu_l1()))
            .collect();
        (eng, agents)
    }

    fn small(clients: u64, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            clients,
            agents: 4,
            keys: 1 << 10,
            buckets: 1 << 11,
            ..ramp_then_burst(clients, seed)
        }
    }

    fn run_small(spec: &ScenarioSpec, homes: usize) -> ScenarioOutcome {
        let (mut eng, agents) = engine_for(spec, homes);
        run(spec, &mut eng, &agents, PhysAddr::new(0))
    }

    #[test]
    fn every_client_completes_exactly_once() {
        let spec = small(500, 7);
        let out = run_small(&spec, 2);
        assert_eq!(out.completed + out.capped, spec.clients);
        assert_eq!(out.capped, 0, "no sane session hits the cap");
        assert!(out.accesses >= spec.clients, "every session reads once");
        assert_eq!(
            out.phases.iter().map(|p| p.sessions).sum::<u64>(),
            spec.clients
        );
        assert!(out.elapsed > Tick::ZERO);
        assert!(out.events > 0);
    }

    #[test]
    fn identical_specs_reproduce_identical_outcomes() {
        let spec = small(400, 11);
        let a = run_small(&spec, 2);
        let b = run_small(&spec, 2);
        assert_eq!(a, b);
        assert_ne!(a.checksum, 0);
    }

    #[test]
    fn seed_changes_the_stream() {
        let a = run_small(&small(300, 1), 1);
        let b = run_small(&small(300, 2), 1);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn closed_loop_bounds_concurrency() {
        let mut spec = small(400, 5);
        spec.arrival = Arrival::Closed { concurrency: 16 };
        spec.machine = MachineSpec::ScanThenWrite { reads: 2 };
        let out = run_small(&spec, 2);
        assert_eq!(out.completed, spec.clients);
        assert!(
            out.peak_live <= 16,
            "closed loop leaked to {} live sessions",
            out.peak_live
        );
        assert_eq!(out.accesses, spec.clients * 2);
    }

    #[test]
    fn hot_key_phase_reports_separately() {
        let mut spec = small(600, 9);
        spec.phases = vec![
            PhaseSpec::new("warm", Tick::from_us(200), Traffic::Steady { rate: 1.0 }),
            PhaseSpec::new(
                "storm",
                Tick::from_us(200),
                Traffic::HotKey {
                    rate: 1.0,
                    hot_keys: 8,
                    hot_fraction: 0.95,
                },
            ),
        ];
        let out = run_small(&spec, 2);
        assert_eq!(out.phases.len(), 2);
        assert_eq!(out.phases[0].name, "warm");
        assert_eq!(out.phases[1].name, "storm");
        assert!(out.phases[1].accesses > 0);
        for p in &out.phases {
            assert!(p.p50_ns <= p.p95_ns && p.p95_ns <= p.p99_ns);
        }
    }

    #[test]
    fn safety_cap_fences_runaway_machines() {
        let spec = small(50, 3);
        // A machine that never terminates: ping-pong between two states.
        let table = TransitionTable::new(State(0))
            .on(State(0), |ctx: &mut StepCtx<'_>| {
                let key = ctx.pick_key();
                Action::Access {
                    key,
                    write: false,
                    then: State(1),
                }
            })
            .on(State(1), |ctx: &mut StepCtx<'_>| {
                let key = ctx.pick_key();
                Action::Access {
                    key,
                    write: true,
                    then: State(0),
                }
            })
            .safety_cap(8);
        let (mut eng, agents) = engine_for(&spec, 1);
        let out = run_with_machine(&spec, &table, &mut eng, &agents, PhysAddr::new(0));
        assert_eq!(out.capped, spec.clients, "every session hits the cap");
        assert_eq!(out.completed, 0);
        assert_eq!(out.accesses, spec.clients * 8);
    }

    #[test]
    fn canonical_scenarios_run_small() {
        for spec in [
            ramp_then_burst(800, 1),
            steady_closed(800, 2),
            hot_key_storm(800, 3),
        ] {
            let out = run_small(&spec, 2);
            assert_eq!(out.completed + out.capped, spec.clients, "{}", spec.name);
            assert_ne!(out.checksum, 0, "{}", spec.name);
        }
    }
}

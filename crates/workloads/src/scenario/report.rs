//! Scenario results: per-phase latency percentiles, throughput, and the
//! determinism checksum.

use sim_core::{Summary, Tick};

/// Aggregates for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name from the spec.
    pub name: String,
    /// Sessions attributed to (and completed in) the phase.
    pub sessions: u64,
    /// Coherent accesses those sessions issued.
    pub accesses: u64,
    /// Median access latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile access latency, nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile access latency, nanoseconds.
    pub p99_ns: f64,
    /// Mean access latency, nanoseconds.
    pub mean_ns: f64,
    /// Simulated span from the phase's first issue to its last
    /// completion.
    pub span: Tick,
}

impl PhaseReport {
    /// Completed accesses per simulated microsecond over the phase's
    /// measured span.
    pub fn throughput_per_us(&self) -> f64 {
        let us = self.span.as_us_f64();
        if us > 0.0 {
            self.accesses as f64 / us
        } else {
            0.0
        }
    }
}

/// Everything a scenario run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name from the spec.
    pub name: String,
    /// Sessions that ran to a terminal state.
    pub completed: u64,
    /// Sessions force-finished by the safety cap.
    pub capped: u64,
    /// Total coherent accesses completed.
    pub accesses: u64,
    /// Engine events dispatched during the run.
    pub events: u64,
    /// Order-sensitive digest of the completion stream (same folding as
    /// the hotpath canary); identical specs must reproduce it exactly.
    pub checksum: u64,
    /// Peak concurrent sessions.
    pub peak_live: u64,
    /// Simulated time at the last completion.
    pub elapsed: Tick,
    /// Per-phase aggregates, in spec order.
    pub phases: Vec<PhaseReport>,
}

/// Accumulator behind one [`PhaseReport`].
#[derive(Debug)]
pub(crate) struct PhaseAcc {
    pub name: String,
    pub sessions: u64,
    pub latencies: Summary,
    pub first_issue: Tick,
    pub last_done: Tick,
}

impl PhaseAcc {
    pub fn new(name: String) -> Self {
        PhaseAcc {
            name,
            sessions: 0,
            latencies: Summary::new(),
            first_issue: Tick::MAX,
            last_done: Tick::ZERO,
        }
    }

    pub fn record(&mut self, issued: Tick, done: Tick) {
        self.latencies.record_ns(done.saturating_sub(issued));
        self.first_issue = self.first_issue.min(issued);
        self.last_done = self.last_done.max(done);
    }

    pub fn finish(mut self) -> PhaseReport {
        let accesses = self.latencies.len() as u64;
        let (span, p50, p95, p99, mean) = if accesses > 0 {
            (
                self.last_done.saturating_sub(self.first_issue),
                self.latencies.percentile(50.0),
                self.latencies.percentile(95.0),
                self.latencies.percentile(99.0),
                self.latencies.mean(),
            )
        } else {
            (Tick::ZERO, 0.0, 0.0, 0.0, 0.0)
        };
        PhaseReport {
            name: self.name,
            sessions: self.sessions,
            accesses,
            p50_ns: p50,
            p95_ns: p95,
            p99_ns: p99,
            mean_ns: mean,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_acc_tracks_span_and_percentiles() {
        let mut acc = PhaseAcc::new("p".into());
        for i in 1..=100u64 {
            acc.record(Tick::from_ns(1000), Tick::from_ns(1000 + i));
        }
        acc.sessions = 10;
        let r = acc.finish();
        assert_eq!(r.accesses, 100);
        assert_eq!(r.p50_ns, 50.0);
        assert_eq!(r.p99_ns, 99.0);
        assert_eq!(r.span, Tick::from_ns(100));
        assert!(r.throughput_per_us() > 0.0);
    }

    #[test]
    fn empty_phase_reports_zeroes() {
        let r = PhaseAcc::new("empty".into()).finish();
        assert_eq!(r.accesses, 0);
        assert_eq!(r.span, Tick::ZERO);
        assert_eq!(r.throughput_per_us(), 0.0);
    }
}

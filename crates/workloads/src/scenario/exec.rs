//! The scenario executor: millions of logical clients over a handful of
//! real cache agents.
//!
//! Logical clients are lightweight [`Session`] records; only their
//! coherent accesses touch the protocol engine, issued through
//! `spec.agents` real [`CacheAgent`](simcxl_coherence::cache::CacheAgent)s
//! (client `c` rides agent `c % agents`). Client wakeups (arrivals,
//! think-time expiries) live in the scenario's own calendar queue; the
//! executor interleaves the two event streams by time:
//!
//! * if the earliest wakeup is no later than the engine's next event,
//!   pop the wakeup batch and step those sessions (issuing at the
//!   wakeup tick — never before the engine's `now`);
//! * otherwise dispatch one engine tick-batch and step the sessions
//!   whose accesses completed, at their completion ticks.
//!
//! Both streams are deterministic functions of the spec, so the
//! completion-stream checksum is too.

use super::machine::{Action, StepCtx, TransitionTable};
use super::report::{PhaseAcc, ScenarioOutcome};
use super::session::{Session, SessionSlab};
use super::spec::{Arrival, ScenarioSpec};
use crate::kvstore::slot_addr;
use sim_core::{EventQueue, FxHashMap, SimRng, Tick};
use simcxl_coherence::{AgentId, Completion, MemOp, ProtocolEngine, ReqId};
use simcxl_mem::PhysAddr;

/// A scenario-side wakeup.
enum Wake {
    /// A logical client enters the system.
    Arrive { client: u64, phase: u16 },
    /// A session's think timer fired.
    Think { slot: u32 },
}

/// Folds one completion into the order-sensitive digest — the same
/// folding the hotpath determinism canary uses, so scenario checksums
/// and hotpath checksums are comparable artifacts.
fn fold_checksum(acc: u64, c: &Completion) -> u64 {
    acc.rotate_left(7)
        .wrapping_add(c.value ^ c.done.as_ps() ^ c.addr.raw())
}

/// Runs `spec` on `eng`, multiplexing its clients over `agents`, with
/// the key table based at `base`. Builds the machine from
/// `spec.machine`; use [`run_with_machine`] to supply a custom one.
///
/// # Panics
///
/// Panics on an invalid spec (see [`ScenarioSpec::validate`]) or if
/// `agents.len() != spec.agents`.
pub fn run(
    spec: &ScenarioSpec,
    eng: &mut ProtocolEngine,
    agents: &[AgentId],
    base: PhysAddr,
) -> ScenarioOutcome {
    let table = spec.machine.build();
    run_with_machine(spec, &table, eng, agents, base)
}

/// [`run`], but the arrival schedule starts at `start` instead of
/// `Tick::ZERO` (clamped up to the engine's `now`, so a request is
/// never issued in the engine's past). This is how degradation suites
/// chain several scenario segments on **one** engine — each segment
/// inherits the warm caches and fault-window clock of its predecessor.
///
/// # Panics
///
/// As [`run`].
pub fn run_from(
    spec: &ScenarioSpec,
    eng: &mut ProtocolEngine,
    agents: &[AgentId],
    base: PhysAddr,
    start: Tick,
) -> ScenarioOutcome {
    let table = spec.machine.build();
    run_inner(spec, &table, eng, agents, base, start)
}

/// [`run`], but with an explicit [`TransitionTable`] (the spec's
/// `machine` field is ignored).
///
/// # Panics
///
/// As [`run`].
pub fn run_with_machine(
    spec: &ScenarioSpec,
    table: &TransitionTable,
    eng: &mut ProtocolEngine,
    agents: &[AgentId],
    base: PhysAddr,
) -> ScenarioOutcome {
    run_inner(spec, table, eng, agents, base, Tick::ZERO)
}

fn run_inner(
    spec: &ScenarioSpec,
    table: &TransitionTable,
    eng: &mut ProtocolEngine,
    agents: &[AgentId],
    base: PhysAddr,
    start: Tick,
) -> ScenarioOutcome {
    spec.validate();
    assert_eq!(
        agents.len(),
        spec.agents,
        "agent roster must match the spec"
    );
    let quotas = spec.phase_quotas();
    let mut exec = Exec {
        spec,
        table,
        agents,
        base,
        rng: SimRng::new(spec.seed),
        wakeups: EventQueue::new(),
        sessions: SessionSlab::new(),
        outstanding: FxHashMap::default(),
        accs: spec
            .phases
            .iter()
            .map(|p| PhaseAcc::new(p.name.clone()))
            .collect(),
        hots: spec.phases.iter().map(|p| p.traffic.hot()).collect(),
        cum_quota: quotas
            .iter()
            .scan(0u64, |acc, q| {
                *acc += q;
                Some(*acc)
            })
            .collect(),
        next_client: 0,
        closed: matches!(spec.arrival, Arrival::Closed { .. }),
        completed: 0,
        capped: 0,
        accesses: 0,
        checksum: 0,
        elapsed: Tick::ZERO,
    };

    // Never schedule into the engine's past: a chained segment starts
    // no earlier than where its predecessor left the clock.
    let t0 = start.max(eng.now());
    match spec.arrival {
        Arrival::Open => {
            // The whole arrival schedule is computable upfront: each
            // phase places its quota by inverting its traffic shape.
            let mut client = 0u64;
            let mut phase_start = t0;
            for (pi, phase) in spec.phases.iter().enumerate() {
                for j in 0..quotas[pi] {
                    let at =
                        phase_start + phase.traffic.arrival_offset(j, quotas[pi], phase.duration);
                    exec.wakeups.push(
                        at,
                        Wake::Arrive {
                            client,
                            phase: pi as u16,
                        },
                    );
                    client += 1;
                }
                phase_start += phase.duration;
            }
            exec.next_client = client;
        }
        Arrival::Closed { concurrency } => {
            // Admit the first window ns-staggered from t0; every
            // completion admits the next queued client. Phases label
            // population shares and key skew, not wall-clock windows.
            let first = concurrency.min(spec.clients);
            for c in 0..first {
                let phase = exec.phase_of(c);
                exec.wakeups
                    .push(t0 + Tick::from_ns(c), Wake::Arrive { client: c, phase });
            }
            exec.next_client = first;
        }
    }

    let events0 = eng.events_dispatched();
    loop {
        let tw = exec.wakeups.peek_tick();
        let te = eng.next_event();
        match (tw, te) {
            (None, None) => break,
            (Some(tw), te) if te.is_none_or(|te| tw <= te) => {
                // Wakeup batch first: issues land at tw >= eng.now().
                while exec.wakeups.peek_tick() == Some(tw) {
                    let (_, wake) = exec.wakeups.pop().expect("peeked wakeup");
                    match wake {
                        Wake::Arrive { client, phase } => exec.arrive(eng, client, phase, tw),
                        Wake::Think { slot } => exec.step(eng, slot, tw),
                    }
                }
            }
            _ => {
                let done = eng.run_next().expect("engine had a next event");
                for c in &done {
                    exec.on_completion(eng, c);
                }
            }
        }
    }
    assert!(
        exec.outstanding.is_empty() && exec.sessions.live() == 0,
        "scenario drained with {} requests / {} sessions stranded",
        exec.outstanding.len(),
        exec.sessions.live()
    );

    ScenarioOutcome {
        name: spec.name.clone(),
        completed: exec.completed,
        capped: exec.capped,
        accesses: exec.accesses,
        events: eng.events_dispatched() - events0,
        checksum: exec.checksum,
        peak_live: exec.sessions.peak() as u64,
        elapsed: exec.elapsed,
        phases: exec.accs.into_iter().map(PhaseAcc::finish).collect(),
    }
}

struct Exec<'a> {
    spec: &'a ScenarioSpec,
    table: &'a TransitionTable,
    agents: &'a [AgentId],
    base: PhysAddr,
    rng: SimRng,
    wakeups: EventQueue<Wake>,
    sessions: SessionSlab,
    outstanding: FxHashMap<ReqId, u32>,
    accs: Vec<PhaseAcc>,
    hots: Vec<Option<(u64, f64)>>,
    cum_quota: Vec<u64>,
    next_client: u64,
    closed: bool,
    completed: u64,
    capped: u64,
    accesses: u64,
    checksum: u64,
    elapsed: Tick,
}

impl Exec<'_> {
    /// Phase a client index belongs to under the quota split.
    fn phase_of(&self, client: u64) -> u16 {
        self.cum_quota
            .iter()
            .position(|&cum| client < cum)
            .expect("client within population") as u16
    }

    fn arrive(&mut self, eng: &mut ProtocolEngine, client: u64, phase: u16, now: Tick) {
        let slot = self.sessions.insert(Session {
            client,
            phase,
            state: self.table.start(),
            steps: 0,
            started: now,
            last_key: 0,
            last_value: 0,
        });
        self.accs[phase as usize].sessions += 1;
        self.step(eng, slot, now);
    }

    /// Advances the session in `slot`, which is entering its current
    /// state at `now`.
    fn step(&mut self, eng: &mut ProtocolEngine, slot: u32, now: Tick) {
        let s = *self.sessions.get_mut(slot);
        if self.table.is_terminal(s.state) {
            self.finish(slot, now, false);
            return;
        }
        if s.steps >= self.table.cap() {
            self.finish(slot, now, true);
            return;
        }
        let mut ctx = StepCtx {
            client: s.client,
            step: s.steps,
            keys: self.spec.keys,
            hot: self.hots[s.phase as usize],
            last_key: s.last_key,
            last_value: s.last_value,
            rng: &mut self.rng,
        };
        let action = self.table.dispatch(s.state, &mut ctx);
        let sess = self.sessions.get_mut(slot);
        sess.steps += 1;
        match action {
            Action::Access { key, write, then } => {
                sess.last_key = key;
                sess.state = then;
                let agent = self.agents[(s.client % self.agents.len() as u64) as usize];
                let addr = slot_addr(self.base, key, self.spec.buckets);
                let op = if write {
                    MemOp::Store {
                        value: self.rng.next_u64(),
                    }
                } else {
                    MemOp::Load
                };
                let req = eng.issue(agent, op, addr, now);
                self.outstanding.insert(req, slot);
            }
            Action::Think { delay, then } => {
                sess.state = then;
                self.wakeups.push(now + delay, Wake::Think { slot });
            }
            Action::Done => self.finish(slot, now, false),
        }
    }

    fn on_completion(&mut self, eng: &mut ProtocolEngine, c: &Completion) {
        self.checksum = fold_checksum(self.checksum, c);
        self.accesses += 1;
        self.elapsed = self.elapsed.max(c.done);
        let slot = self
            .outstanding
            .remove(&c.req)
            .expect("completion matches an outstanding scenario request");
        {
            let s = self.sessions.get_mut(slot);
            s.last_value = c.value;
            let phase = s.phase as usize;
            self.accs[phase].record(c.issued, c.done);
        }
        self.step(eng, slot, c.done);
    }

    fn finish(&mut self, slot: u32, now: Tick, capped: bool) {
        self.sessions.remove(slot);
        if capped {
            self.capped += 1;
        } else {
            self.completed += 1;
        }
        if self.closed && self.next_client < self.spec.clients {
            let client = self.next_client;
            self.next_client += 1;
            let phase = self.phase_of(client);
            self.wakeups.push(now, Wake::Arrive { client, phase });
        }
    }
}

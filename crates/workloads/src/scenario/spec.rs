//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] is data, not code: client population, arrival
//! discipline, session machine, key space, and the phase sequence. Two
//! identical specs produce bit-identical simulations — every random
//! draw flows from the spec's seed through [`sim_core::SimRng`], and
//! arrival schedules are computed, not sampled.

use super::machine::{Action, State, StepCtx, TransitionTable};
use super::phase::{PhaseSpec, Traffic};
use sim_core::Tick;

/// How client sessions enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Open loop: arrivals follow each phase's traffic shape regardless
    /// of completions (load is injected, latency absorbs it).
    Open,
    /// Closed loop: at most `concurrency` sessions in flight; each
    /// completion immediately admits the next queued client (throughput
    /// is measured, not imposed).
    Closed {
        /// In-flight session bound.
        concurrency: u64,
    },
}

/// Canonical session machines, named so a spec stays plain data.
/// [`MachineSpec::build`] produces the actual [`TransitionTable`];
/// custom machines can be run through
/// [`run_with_machine`](super::exec::run_with_machine) instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineSpec {
    /// Classic KV session: look a key up; with probability `get_ratio`
    /// that is the whole session, otherwise think for `think` and write
    /// the same key back.
    GetPut {
        /// Fraction of read-only sessions.
        get_ratio: f64,
        /// Client-side think time before the write-back.
        think: Tick,
    },
    /// Scan `reads` random keys, then write the last one — a
    /// read-mostly session with a dependent update.
    ScanThenWrite {
        /// Keys scanned before the write.
        reads: u32,
    },
}

impl MachineSpec {
    /// Builds the transition table for this machine.
    pub fn build(&self) -> TransitionTable {
        match *self {
            MachineSpec::GetPut { get_ratio, think } => {
                assert!(
                    (0.0..=1.0).contains(&get_ratio),
                    "get_ratio is a probability"
                );
                TransitionTable::new(State(0))
                    .on(State(0), |ctx: &mut StepCtx<'_>| {
                        let key = ctx.pick_key();
                        Action::Access {
                            key,
                            write: false,
                            then: State(1),
                        }
                    })
                    .on(State(1), move |ctx: &mut StepCtx<'_>| {
                        if ctx.rng.chance(get_ratio) {
                            Action::Done
                        } else {
                            Action::Think {
                                delay: think,
                                then: State(2),
                            }
                        }
                    })
                    .on(State(2), |ctx: &mut StepCtx<'_>| Action::Access {
                        key: ctx.last_key,
                        write: true,
                        then: State(3),
                    })
                    .terminal(State(3))
            }
            MachineSpec::ScanThenWrite { reads } => {
                assert!(reads > 0, "scan of zero keys");
                TransitionTable::new(State(0))
                    .on(State(0), move |ctx: &mut StepCtx<'_>| {
                        if ctx.step + 1 < reads {
                            let key = ctx.pick_key();
                            Action::Access {
                                key,
                                write: false,
                                then: State(0),
                            }
                        } else {
                            let key = ctx.pick_key();
                            Action::Access {
                                key,
                                write: true,
                                then: State(1),
                            }
                        }
                    })
                    .terminal(State(1))
                    .safety_cap(
                        reads
                            .saturating_mul(4)
                            .max(TransitionTable::DEFAULT_SAFETY_CAP),
                    )
            }
        }
    }
}

/// A complete scenario description: who arrives, when, and what each
/// client does.
///
/// ```
/// use simcxl_workloads::scenario::{
///     Arrival, MachineSpec, PhaseSpec, ScenarioSpec, Traffic,
/// };
/// use sim_core::Tick;
///
/// let spec = ScenarioSpec {
///     name: "warm-then-storm".into(),
///     seed: 42,
///     clients: 10_000,
///     agents: 8,
///     keys: 1 << 14,
///     buckets: 1 << 15,
///     arrival: Arrival::Open,
///     machine: MachineSpec::GetPut {
///         get_ratio: 0.9,
///         think: Tick::from_ns(200),
///     },
///     phases: vec![
///         PhaseSpec::new(
///             "ramp",
///             Tick::from_us(300),
///             Traffic::Ramp { from: 0.0, to: 2.0 },
///         ),
///         PhaseSpec::new("storm", Tick::from_us(100), Traffic::Burst { rate: 3.0 }),
///     ],
/// };
/// // Population splits across phases by mean-rate x duration:
/// // ramp 300us@1.0 vs burst 100us@3.0 -> an even split.
/// assert_eq!(spec.phase_quotas(), vec![5_000, 5_000]);
/// assert_eq!(spec.total_duration(), Tick::from_us(400));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reported verbatim).
    pub name: String,
    /// Seed for every random draw in the scenario.
    pub seed: u64,
    /// Total logical client sessions across all phases.
    pub clients: u64,
    /// Real cache agents the sessions are multiplexed over.
    pub agents: usize,
    /// Logical key-space size.
    pub keys: u64,
    /// Hash-table buckets the keys map onto (64 B slots; should exceed
    /// `keys` to keep collisions realistic rather than pathological).
    pub buckets: u64,
    /// Arrival discipline.
    pub arrival: Arrival,
    /// Per-client session machine.
    pub machine: MachineSpec,
    /// Phase sequence (at least one).
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list, zero clients/keys/buckets, an
    /// agent count outside the engine's peer budget, or a zero
    /// closed-loop concurrency.
    pub fn validate(&self) {
        assert!(
            !self.phases.is_empty(),
            "a scenario needs at least one phase"
        );
        assert!(self.clients > 0, "a scenario needs clients");
        assert!(self.keys > 0 && self.buckets > 0, "empty key space");
        assert!(
            self.agents >= 1 && self.agents <= 62,
            "agent count must fit the engine's peer budget (1..=62)"
        );
        if let Arrival::Closed { concurrency } = self.arrival {
            assert!(concurrency > 0, "closed loop needs concurrency");
        }
        let weight: f64 = self
            .phases
            .iter()
            .map(|p| p.traffic.mean_rate() * p.duration.as_ns_f64())
            .sum();
        assert!(weight > 0.0, "every phase has zero arrival weight");
    }

    /// Splits the client population across phases in proportion to each
    /// phase's `mean_rate × duration`; rounding remainders land on the
    /// last nonzero-weight phase so the quotas sum to `clients` exactly.
    pub fn phase_quotas(&self) -> Vec<u64> {
        let weights: Vec<f64> = self
            .phases
            .iter()
            .map(|p| p.traffic.mean_rate() * p.duration.as_ns_f64())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut quotas: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total) * self.clients as f64).floor() as u64)
            .collect();
        let assigned: u64 = quotas.iter().sum();
        let last = weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("validate: some phase has weight");
        quotas[last] += self.clients - assigned;
        quotas
    }

    /// Sum of all phase durations.
    pub fn total_duration(&self) -> Tick {
        self.phases
            .iter()
            .fold(Tick::ZERO, |acc, p| acc + p.duration)
    }
}

/// Duration multiplier for the canonical scenarios: phase windows grow
/// with the client population so the arrival *density* (clients per
/// simulated ns) stays at the designed level. Without this, a
/// million-client population squeezed into the same microseconds is not
/// "more clients" but an unserviceable injection rate — the open-loop
/// backlog grows without bound and the run measures queue pathology
/// instead of the scenario.
fn population_scale(clients: u64) -> u64 {
    clients.div_ceil(50_000).max(1)
}

/// Canonical scenario 1: open-loop GET/PUT traffic that ramps up, holds
/// steady, then takes a thundering-herd burst — the bread-and-butter
/// "can the directory absorb a spike" question.
pub fn ramp_then_burst(clients: u64, seed: u64) -> ScenarioSpec {
    let scale = population_scale(clients);
    ScenarioSpec {
        name: "ramp_then_burst".into(),
        seed,
        clients,
        agents: 16,
        keys: 1 << 16,
        buckets: 1 << 17,
        arrival: Arrival::Open,
        machine: MachineSpec::GetPut {
            get_ratio: 0.9,
            think: Tick::from_ns(120),
        },
        phases: vec![
            PhaseSpec::new(
                "ramp",
                Tick::from_us(400) * scale,
                Traffic::Ramp { from: 0.0, to: 2.0 },
            ),
            PhaseSpec::new(
                "steady",
                Tick::from_us(400) * scale,
                Traffic::Steady { rate: 2.0 },
            ),
            PhaseSpec::new(
                "burst",
                Tick::from_us(200) * scale,
                Traffic::Burst { rate: 6.0 },
            ),
        ],
    }
}

/// Canonical scenario 2: closed-loop scan-then-write sessions at a
/// fixed concurrency — measures sustainable throughput rather than
/// injected load.
pub fn steady_closed(clients: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "steady_closed".into(),
        seed,
        clients,
        agents: 32,
        keys: 1 << 18,
        buckets: 1 << 19,
        arrival: Arrival::Closed { concurrency: 512 },
        machine: MachineSpec::ScanThenWrite { reads: 2 },
        phases: vec![PhaseSpec::new(
            "steady",
            Tick::from_us(1000) * population_scale(clients),
            Traffic::Steady { rate: 1.0 },
        )],
    }
}

/// Canonical scenario 3: adversarial hot-key storm — open-loop GET/PUT
/// where a steady warm-up hands over to a phase that slams 90% of its
/// traffic onto 64 keys, maximizing directory conflict pressure.
pub fn hot_key_storm(clients: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "hot_key_storm".into(),
        seed,
        clients,
        agents: 16,
        keys: 1 << 16,
        buckets: 1 << 17,
        arrival: Arrival::Open,
        machine: MachineSpec::GetPut {
            get_ratio: 0.5,
            think: Tick::from_ns(80),
        },
        phases: vec![
            PhaseSpec::new(
                "warmup",
                Tick::from_us(300) * population_scale(clients),
                Traffic::Steady { rate: 1.0 },
            ),
            PhaseSpec::new(
                "storm",
                Tick::from_us(300) * population_scale(clients),
                Traffic::HotKey {
                    rate: 3.0,
                    hot_keys: 64,
                    hot_fraction: 0.9,
                },
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_sum_to_clients() {
        for spec in [
            ramp_then_burst(999_983, 1),
            steady_closed(1_000_003, 2),
            hot_key_storm(777_777, 3),
        ] {
            spec.validate();
            let q = spec.phase_quotas();
            assert_eq!(q.iter().sum::<u64>(), spec.clients, "{}", spec.name);
            assert_eq!(q.len(), spec.phases.len());
        }
    }

    #[test]
    fn get_put_machine_shape() {
        let t = MachineSpec::GetPut {
            get_ratio: 0.5,
            think: Tick::from_ns(100),
        }
        .build();
        assert_eq!(t.start(), State(0));
        assert!(t.is_terminal(State(3)));
        assert!(!t.is_terminal(State(0)));
    }

    #[test]
    fn scan_machine_caps_scale_with_reads() {
        let t = MachineSpec::ScanThenWrite { reads: 200 }.build();
        assert!(t.cap() >= 800);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let mut spec = ramp_then_burst(10, 1);
        spec.phases.clear();
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "peer budget")]
    fn agent_overflow_rejected() {
        let mut spec = ramp_then_burst(10, 1);
        spec.agents = 63;
        spec.validate();
    }
}

//! Per-client session state machines.
//!
//! Every logical client runs one small state machine describing its
//! session: which key to touch next, whether to read or write, and how
//! long to think between accesses. The machine is a transition table —
//! a map from [`State`] to a boxed [`Handler`] — with explicit terminal
//! states and a global safety cap bounding runaway sessions, so a buggy
//! handler can stall one client but never the scenario.

use sim_core::{FxHashMap, FxHashSet, SimRng, Tick};

/// A state in a client session machine. Plain `u8` newtype: machines
/// are small (a handful of states), and a million concurrent sessions
/// each carry one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(pub u8);

impl State {
    /// The conventional entry state.
    pub const START: State = State(0);
}

/// What a session does on entering a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Issue one coherent access to `key`'s slot, transition to `then`
    /// when the access completes.
    Access {
        /// Logical key to touch (mapped to a table slot by the
        /// executor).
        key: u64,
        /// Store (`true`) or load (`false`).
        write: bool,
        /// State entered at completion time.
        then: State,
    },
    /// Sleep `delay` of simulated time (client-side think time), then
    /// enter `then`.
    Think {
        /// Simulated think time.
        delay: Tick,
        /// State entered when the timer fires.
        then: State,
    },
    /// Session complete.
    Done,
}

/// Per-step context handed to a [`Handler`]: everything a handler may
/// consult or mutate. Handlers themselves are stateless — all mutable
/// session state lives here and in the executor's session record.
pub struct StepCtx<'a> {
    /// Logical client id (unique per session).
    pub client: u64,
    /// Steps this session has executed so far.
    pub step: u32,
    /// Size of the scenario's key space.
    pub keys: u64,
    /// Hot-set override from the active traffic phase:
    /// `(hot_keys, hot_fraction)`.
    pub hot: Option<(u64, f64)>,
    /// Key touched by this session's most recent access.
    pub last_key: u64,
    /// Value observed by this session's most recent access.
    pub last_value: u64,
    /// The scenario's deterministic RNG (shared; draw order is part of
    /// the reproducible schedule).
    pub rng: &'a mut SimRng,
}

impl StepCtx<'_> {
    /// Draws a key honoring the active phase's hot-set skew (uniform
    /// over the key space when no hot set is active).
    pub fn pick_key(&mut self) -> u64 {
        if let Some((hot_keys, hot_fraction)) = self.hot {
            let hot = hot_keys.min(self.keys).max(1);
            if self.rng.chance(hot_fraction) {
                return self.rng.below(hot);
            }
            if self.keys > hot {
                return hot + self.rng.below(self.keys - hot);
            }
        }
        self.rng.below(self.keys)
    }
}

/// A state's behavior. Implemented for free by any
/// `Fn(&mut StepCtx<'_>) -> Action` closure.
pub trait Handler {
    /// Decides the session's next action on entering the state.
    fn on_enter(&self, ctx: &mut StepCtx<'_>) -> Action;
}

impl<F: Fn(&mut StepCtx<'_>) -> Action> Handler for F {
    fn on_enter(&self, ctx: &mut StepCtx<'_>) -> Action {
        self(ctx)
    }
}

/// The session machine: `State -> Handler` transition table plus
/// terminal states and the global safety cap.
///
/// ```
/// use simcxl_workloads::scenario::{Action, State, TransitionTable};
///
/// // Read one random key, then write it back, then done.
/// let table = TransitionTable::new(State::START)
///     .on(State(0), |ctx: &mut simcxl_workloads::scenario::StepCtx<'_>| {
///         let key = ctx.pick_key();
///         Action::Access { key, write: false, then: State(1) }
///     })
///     .on(State(1), |ctx: &mut simcxl_workloads::scenario::StepCtx<'_>| {
///         Action::Access { key: ctx.last_key, write: true, then: State(2) }
///     })
///     .terminal(State(2));
/// assert!(table.is_terminal(State(2)));
/// assert_eq!(table.start(), State::START);
/// ```
pub struct TransitionTable {
    handlers: FxHashMap<State, Box<dyn Handler>>,
    terminal: FxHashSet<State>,
    start: State,
    safety_cap: u32,
}

impl TransitionTable {
    /// Default per-session step bound: generous for any sane session,
    /// tiny next to a scenario's total work.
    pub const DEFAULT_SAFETY_CAP: u32 = 256;

    /// Creates an empty table entered at `start`.
    pub fn new(start: State) -> Self {
        TransitionTable {
            handlers: FxHashMap::default(),
            terminal: FxHashSet::default(),
            start,
            safety_cap: Self::DEFAULT_SAFETY_CAP,
        }
    }

    /// Registers `handler` for `state` (replacing any previous one).
    pub fn on(mut self, state: State, handler: impl Handler + 'static) -> Self {
        self.handlers.insert(state, Box::new(handler));
        self
    }

    /// Marks `state` terminal: a session entering it is complete.
    pub fn terminal(mut self, state: State) -> Self {
        self.terminal.insert(state);
        self
    }

    /// Overrides the per-session step bound. A session reaching the cap
    /// is force-finished (and reported as capped) instead of looping
    /// forever.
    pub fn safety_cap(mut self, cap: u32) -> Self {
        assert!(cap > 0, "a zero cap would finish every session at birth");
        self.safety_cap = cap;
        self
    }

    /// The entry state.
    pub fn start(&self) -> State {
        self.start
    }

    /// The per-session step bound.
    pub fn cap(&self) -> u32 {
        self.safety_cap
    }

    /// Whether `state` ends the session.
    pub fn is_terminal(&self, state: State) -> bool {
        self.terminal.contains(&state)
    }

    /// Runs the handler for `state`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no handler for a non-terminal `state`
    /// — a malformed table, caught loudly rather than stalling clients.
    pub fn dispatch(&self, state: State, ctx: &mut StepCtx<'_>) -> Action {
        match self.handlers.get(&state) {
            Some(h) => h.on_enter(ctx),
            None => panic!("no handler for non-terminal {state:?}"),
        }
    }
}

impl std::fmt::Debug for TransitionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionTable")
            .field("states", &self.handlers.len())
            .field("terminal", &self.terminal.len())
            .field("start", &self.start)
            .field("safety_cap", &self.safety_cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(rng: &mut SimRng) -> StepCtx<'_> {
        StepCtx {
            client: 0,
            step: 0,
            keys: 100,
            hot: None,
            last_key: 0,
            last_value: 0,
            rng,
        }
    }

    #[test]
    fn closure_handlers_dispatch() {
        let table = TransitionTable::new(State(0))
            .on(State(0), |_: &mut StepCtx<'_>| Action::Done)
            .terminal(State(1));
        let mut rng = SimRng::new(1);
        let mut ctx = ctx_with(&mut rng);
        assert_eq!(table.dispatch(State(0), &mut ctx), Action::Done);
        assert!(table.is_terminal(State(1)));
        assert!(!table.is_terminal(State(0)));
    }

    #[test]
    #[should_panic(expected = "no handler")]
    fn missing_handler_is_loud() {
        let table = TransitionTable::new(State(0));
        let mut rng = SimRng::new(1);
        let mut ctx = ctx_with(&mut rng);
        table.dispatch(State(9), &mut ctx);
    }

    #[test]
    fn hot_set_skews_key_choice() {
        let mut rng = SimRng::new(7);
        let mut ctx = StepCtx {
            client: 0,
            step: 0,
            keys: 1000,
            hot: Some((10, 0.9)),
            last_key: 0,
            last_value: 0,
            rng: &mut rng,
        };
        let hot = (0..2000).filter(|_| ctx.pick_key() < 10).count();
        let frac = hot as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn uniform_without_hot_set() {
        let mut rng = SimRng::new(7);
        let mut ctx = ctx_with(&mut rng);
        for _ in 0..100 {
            assert!(ctx.pick_key() < 100);
        }
    }
}

//! CXL sub-protocol vocabulary and the mapping from CXL.cache opcodes to
//! the coherence engine's message set.

use simcxl_coherence::msg::MsgKind;
use std::fmt;

/// The three CXL sub-protocols (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubProtocol {
    /// PCIe-equivalent features: enumeration, config, MMIO, DMA.
    Io,
    /// Device coherently caches host memory (D2H).
    Cache,
    /// Host loads/stores device-attached memory (H2D).
    Mem,
}

impl fmt::Display for SubProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubProtocol::Io => "CXL.io",
            SubProtocol::Cache => "CXL.cache",
            SubProtocol::Mem => "CXL.mem",
        };
        f.write_str(s)
    }
}

/// CXL.cache device-to-host request opcodes (CXL 1.1 spec table subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum D2hReq {
    /// Read for shared state.
    RdShared,
    /// Read for ownership.
    RdOwn,
    /// Read current value without caching.
    RdCurr,
    /// Invalid-to-Modified write: full-line push (the NC-P building
    /// block, paper §II-B).
    ItoMWr,
    /// Dirty eviction (requests a write pull).
    DirtyEvict,
    /// Clean eviction notification.
    CleanEvict,
}

impl D2hReq {
    /// The coherence-engine message implementing this opcode.
    pub fn to_msg(self) -> MsgKind {
        match self {
            D2hReq::RdShared | D2hReq::RdCurr => MsgKind::RdShared,
            D2hReq::RdOwn => MsgKind::RdOwn,
            D2hReq::ItoMWr => MsgKind::ItoMWr,
            D2hReq::DirtyEvict => MsgKind::DirtyEvict,
            D2hReq::CleanEvict => MsgKind::CleanEvict,
        }
    }
}

/// Host-to-device requests (snoops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum H2dReq {
    /// Invalidate.
    SnpInv,
    /// Downgrade to shared, forwarding data.
    SnpData,
    /// Read current value without state change (modelled as SnpData).
    SnpCurr,
}

impl H2dReq {
    /// The coherence-engine message implementing this snoop.
    pub fn to_msg(self) -> MsgKind {
        match self {
            H2dReq::SnpInv => MsgKind::SnpInv,
            H2dReq::SnpData | H2dReq::SnpCurr => MsgKind::SnpData,
        }
    }
}

/// Global-observation (GO) response types carried on the H2D response
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum H2dRsp {
    /// Grant exclusive with data.
    GoE,
    /// Grant shared with data.
    GoS,
    /// Grant invalid (after eviction).
    GoI,
    /// Authorize a writeback.
    GoWritePull,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(SubProtocol::Io.to_string(), "CXL.io");
        assert_eq!(SubProtocol::Cache.to_string(), "CXL.cache");
        assert_eq!(SubProtocol::Mem.to_string(), "CXL.mem");
    }

    #[test]
    fn d2h_mapping_is_total() {
        let all = [
            D2hReq::RdShared,
            D2hReq::RdOwn,
            D2hReq::RdCurr,
            D2hReq::ItoMWr,
            D2hReq::DirtyEvict,
            D2hReq::CleanEvict,
        ];
        for r in all {
            let _ = r.to_msg(); // must not panic
        }
        assert_eq!(D2hReq::RdOwn.to_msg(), MsgKind::RdOwn);
        assert_eq!(D2hReq::ItoMWr.to_msg(), MsgKind::ItoMWr);
    }

    #[test]
    fn h2d_mapping() {
        assert_eq!(H2dReq::SnpInv.to_msg(), MsgKind::SnpInv);
        assert_eq!(H2dReq::SnpCurr.to_msg(), MsgKind::SnpData);
    }
}

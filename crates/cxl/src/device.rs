//! CXL device types and descriptors.

use crate::protocol::SubProtocol;
use simcxl_coherence::CacheConfig;
use simcxl_mem::{DramConfig, DramKind};
use simcxl_pcie::{Bar, BarKind, ConfigSpace};

/// The three CXL device types (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// CXL.io + CXL.cache: accelerators without device memory
    /// (e.g. SmartNICs).
    Type1,
    /// All three sub-protocols: accelerators with device memory
    /// (e.g. GPUs).
    Type2,
    /// CXL.io + CXL.mem: memory expanders.
    Type3,
}

impl DeviceType {
    /// Sub-protocols the type implements.
    pub fn protocols(self) -> &'static [SubProtocol] {
        match self {
            DeviceType::Type1 => &[SubProtocol::Io, SubProtocol::Cache],
            DeviceType::Type2 => &[SubProtocol::Io, SubProtocol::Cache, SubProtocol::Mem],
            DeviceType::Type3 => &[SubProtocol::Io, SubProtocol::Mem],
        }
    }

    /// Whether the device coherently caches host memory.
    pub fn has_cache(self) -> bool {
        !matches!(self, DeviceType::Type3)
    }

    /// Whether the device exposes its own memory to the host.
    pub fn has_memory(self) -> bool {
        !matches!(self, DeviceType::Type1)
    }
}

/// Descriptor of one CXL device, sufficient to instantiate its models.
#[derive(Debug, Clone)]
pub struct CxlDevice {
    /// Device type.
    pub device_type: DeviceType,
    /// HMC configuration (Type-1/2 only).
    pub hmc: Option<CacheConfig>,
    /// Device-attached memory (Type-2/3 only): DRAM kind and size.
    pub memory: Option<(DramConfig, u64)>,
    /// Operating frequency label used in reports.
    pub label: &'static str,
}

impl CxlDevice {
    /// A Type-1 accelerator with the paper's 128 KB 4-way HMC
    /// (the Agilex CXL-FPGA in type-1 configuration).
    pub fn type1_fpga() -> Self {
        CxlDevice {
            device_type: DeviceType::Type1,
            hmc: Some(CacheConfig::hmc_128k()),
            memory: None,
            label: "CXL-FPGA type-1 @400MHz",
        }
    }

    /// A Type-2 accelerator: HMC plus device DDR.
    pub fn type2_fpga(mem_bytes: u64) -> Self {
        CxlDevice {
            device_type: DeviceType::Type2,
            hmc: Some(CacheConfig::hmc_128k()),
            memory: Some((DramConfig::preset(DramKind::Ddr5_4400), mem_bytes)),
            label: "CXL-FPGA type-2 @400MHz",
        }
    }

    /// A Type-3 memory expander (the paper's Samsung 512 GB device,
    /// scaled down by default for simulation).
    pub fn type3_expander(mem_bytes: u64) -> Self {
        CxlDevice {
            device_type: DeviceType::Type3,
            hmc: None,
            memory: Some((DramConfig::preset(DramKind::Ddr5_4800), mem_bytes)),
            label: "CXL memory expander",
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor's resources do not match its type.
    pub fn validate(&self) {
        assert_eq!(
            self.hmc.is_some(),
            self.device_type.has_cache(),
            "{:?} and HMC presence disagree",
            self.device_type
        );
        assert_eq!(
            self.memory.is_some(),
            self.device_type.has_memory(),
            "{:?} and device memory presence disagree",
            self.device_type
        );
    }

    /// Builds the PCI configuration header the BIOS enumerates: one MMIO
    /// BAR always, plus a device-memory BAR for Type-2/3.
    pub fn config_space(&self) -> ConfigSpace {
        let mut cfg = ConfigSpace::new(0x1af4, 0xc0de, 0x0502);
        cfg.add_bar(Bar::new(BarKind::Mmio, 64 * 1024));
        if let Some((_, size)) = self.memory {
            let size = size.next_power_of_two().max(4096);
            cfg.add_bar(Bar::new(BarKind::DeviceMemory, size));
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_sets() {
        assert_eq!(DeviceType::Type1.protocols().len(), 2);
        assert_eq!(DeviceType::Type2.protocols().len(), 3);
        assert!(DeviceType::Type3.protocols().contains(&SubProtocol::Mem));
        assert!(!DeviceType::Type3.has_cache());
        assert!(!DeviceType::Type1.has_memory());
        assert!(DeviceType::Type2.has_cache() && DeviceType::Type2.has_memory());
    }

    #[test]
    fn presets_validate() {
        CxlDevice::type1_fpga().validate();
        CxlDevice::type2_fpga(1 << 30).validate();
        CxlDevice::type3_expander(16 << 30).validate();
    }

    #[test]
    fn config_space_shapes() {
        let t1 = CxlDevice::type1_fpga().config_space();
        assert_eq!(t1.bars.len(), 1);
        let t2 = CxlDevice::type2_fpga(1 << 30).config_space();
        assert_eq!(t2.bars.len(), 2);
        assert_eq!(t2.bars[1].kind, BarKind::DeviceMemory);
    }

    #[test]
    #[should_panic]
    fn inconsistent_descriptor_panics() {
        let mut d = CxlDevice::type1_fpga();
        d.hmc = None;
        d.validate();
    }
}

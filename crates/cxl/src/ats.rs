//! Address translation service: device-side ATC plus host IOMMU costs.
//!
//! Paper §III-C1: "When an XPU thread accesses a virtual address, it
//! first looks up the mapping in its device-side address translation
//! cache (ATC), analogous to the host TLB. Upon an ATC miss, the request
//! is forwarded to the CPU-side IOMMU, which performs a page-table walk
//! to resolve the physical address."

use sim_core::Tick;
use std::collections::HashMap;

/// Configuration of a device [`Atc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtcConfig {
    /// Number of cached translations.
    pub entries: usize,
    /// Page size translations cover.
    pub page_size: u64,
    /// Hit lookup latency.
    pub hit_latency: Tick,
}

impl Default for AtcConfig {
    fn default() -> Self {
        AtcConfig {
            entries: 64,
            page_size: 4096,
            hit_latency: Tick::from_ns(2),
        }
    }
}

/// Host IOMMU walk costs paid on ATC misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IommuConfig {
    /// Device-to-IOMMU request round trip over the link.
    pub link_round_trip: Tick,
    /// Page-table walk cost (4-level walk; prior CCIX studies report
    /// substantial miss penalties, paper §VIII).
    pub walk_latency: Tick,
}

impl Default for IommuConfig {
    fn default() -> Self {
        IommuConfig {
            link_round_trip: Tick::from_ns(400),
            walk_latency: Tick::from_ns(260),
        }
    }
}

/// Result of one device-side translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// Served by the ATC.
    Hit {
        /// Physical page base.
        ppn: u64,
    },
    /// Required an IOMMU walk (already installed in the ATC).
    Miss {
        /// Physical page base.
        ppn: u64,
    },
}

impl TranslationOutcome {
    /// Physical page base either way.
    pub fn ppn(self) -> u64 {
        match self {
            TranslationOutcome::Hit { ppn } | TranslationOutcome::Miss { ppn } => ppn,
        }
    }
}

/// The device-side address translation cache.
///
/// Translations are resolved through a caller-supplied lookup (the OS
/// page table); the ATC only caches and accounts time.
#[derive(Debug)]
pub struct Atc {
    cfg: AtcConfig,
    iommu: IommuConfig,
    entries: HashMap<u64, u64>,
    order: Vec<u64>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Atc {
    /// Creates an empty ATC.
    pub fn new(cfg: AtcConfig, iommu: IommuConfig) -> Self {
        Atc {
            cfg,
            iommu,
            entries: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn vpn(&self, va: u64) -> u64 {
        va / self.cfg.page_size
    }

    /// Translates `va`, resolving misses through `walk` (which maps a
    /// virtual page number to a physical page base). Returns the outcome
    /// and the time translation finished.
    pub fn translate(
        &mut self,
        now: Tick,
        va: u64,
        walk: impl FnOnce(u64) -> u64,
    ) -> (TranslationOutcome, Tick) {
        let vpn = self.vpn(va);
        if let Some(&ppn) = self.entries.get(&vpn) {
            self.hits += 1;
            // Refresh LRU position.
            if let Some(pos) = self.order.iter().position(|&v| v == vpn) {
                self.order.remove(pos);
            }
            self.order.push(vpn);
            return (TranslationOutcome::Hit { ppn }, now + self.cfg.hit_latency);
        }
        self.misses += 1;
        let ppn = walk(vpn);
        if self.entries.len() >= self.cfg.entries {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
        }
        self.entries.insert(vpn, ppn);
        self.order.push(vpn);
        let done =
            now + self.cfg.hit_latency + self.iommu.link_round_trip + self.iommu.walk_latency;
        (TranslationOutcome::Miss { ppn }, done)
    }

    /// Invalidates the translation covering `va` (HMM/ATS invalidation
    /// handshake, paper §III-C2). Returns whether an entry was dropped.
    pub fn invalidate(&mut self, va: u64) -> bool {
        let vpn = self.vpn(va);
        self.invalidations += 1;
        if let Some(pos) = self.order.iter().position(|&v| v == vpn) {
            self.order.remove(pos);
        }
        self.entries.remove(&vpn).is_some()
    }

    /// Invalidates everything.
    pub fn invalidate_all(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidation count.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ATC is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atc() -> Atc {
        Atc::new(
            AtcConfig {
                entries: 4,
                ..AtcConfig::default()
            },
            IommuConfig::default(),
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut a = atc();
        let (o1, t1) = a.translate(Tick::ZERO, 0x1234, |vpn| vpn * 4096 + (1 << 30));
        assert!(matches!(o1, TranslationOutcome::Miss { .. }));
        assert_eq!(o1.ppn(), 4096 + (1 << 30));
        let (o2, t2) = a.translate(t1, 0x1567, |_| unreachable!("should hit"));
        assert!(matches!(o2, TranslationOutcome::Hit { .. }));
        assert!(t2 - t1 < t1, "hit should be much cheaper than miss");
        assert_eq!(a.hits(), 1);
        assert_eq!(a.misses(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut a = atc();
        for page in 0..4u64 {
            a.translate(Tick::ZERO, page * 4096, |v| v);
        }
        // Touch page 0 so page 1 is LRU.
        a.translate(Tick::ZERO, 0, |_| unreachable!());
        a.translate(Tick::ZERO, 4 * 4096, |v| v); // evicts page 1
        assert_eq!(a.len(), 4);
        let (o, _) = a.translate(Tick::ZERO, 4096, |v| v); // page 1 misses
        assert!(matches!(o, TranslationOutcome::Miss { .. }));
        let (o, _) = a.translate(Tick::ZERO, 0, |_| unreachable!());
        assert!(matches!(o, TranslationOutcome::Hit { .. }));
    }

    #[test]
    fn invalidate_forces_rewalk() {
        let mut a = atc();
        a.translate(Tick::ZERO, 0x2000, |v| v);
        assert!(a.invalidate(0x2000));
        assert!(!a.invalidate(0x2000));
        let (o, _) = a.translate(Tick::ZERO, 0x2000, |v| v);
        assert!(matches!(o, TranslationOutcome::Miss { .. }));
        assert_eq!(a.invalidations(), 2);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut a = atc();
        for page in 0..3u64 {
            a.translate(Tick::ZERO, page * 4096, |v| v);
        }
        a.invalidate_all();
        assert!(a.is_empty());
    }
}

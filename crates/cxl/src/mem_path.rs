//! CXL.mem: host load/store access to device-attached memory.
//!
//! Paper §IV-B3: device memory joins the host physical address space and
//! is routed by the memory interface; the OS sees it as a CPU-less NUMA
//! node. The paper measures "a 8% higher overhead at most for message
//! construction through CXL.mem versus construction in host memory"
//! (§VI-E), which this model reproduces through the extra link hop on
//! the store path (stores are posted and pipeline well; the overhead is
//! the residual occupancy, not the full round trip).

use sim_core::{Link, LinkConfig, Tick};
use simcxl_mem::{DramConfig, DramModel, PhysAddr};

/// Configuration of a [`CxlMemPath`].
#[derive(Debug, Clone, PartialEq)]
pub struct CxlMemConfig {
    /// Device DRAM timing.
    pub dram: DramConfig,
    /// One-way CXL link latency.
    pub link_latency: Tick,
    /// Link bandwidth in GB/s.
    pub link_gbps: f64,
    /// Fraction of the store path exposed to the requester (posted
    /// writes hide most of the hop; calibrated so bulk construction in
    /// device memory costs ≤ 8% over host memory).
    pub posted_write_exposure: f64,
}

impl CxlMemConfig {
    /// Calibrated to the paper's Samsung expander measurement.
    pub fn expander_default() -> Self {
        CxlMemConfig {
            dram: DramConfig::preset(simcxl_mem::DramKind::Ddr5_4800),
            link_latency: Tick::from_ns(85),
            link_gbps: 22.5,
            posted_write_exposure: 0.5,
        }
    }
}

/// Host-side access path to device memory over CXL.mem.
#[derive(Debug)]
pub struct CxlMemPath {
    cfg: CxlMemConfig,
    dram: DramModel,
    link: Link,
    loads: u64,
    stores: u64,
}

impl CxlMemPath {
    /// Creates an idle path.
    pub fn new(cfg: CxlMemConfig) -> Self {
        let dram = DramModel::new(cfg.dram.clone());
        let link = Link::new(LinkConfig::with_gbps(cfg.link_latency, cfg.link_gbps));
        CxlMemPath {
            cfg,
            dram,
            link,
            loads: 0,
            stores: 0,
        }
    }

    /// A host load from device memory: full round trip plus DRAM access.
    pub fn load(&mut self, now: Tick, addr: PhysAddr, bytes: u64) -> Tick {
        self.loads += 1;
        let at_device = self.link.send(now, 16);
        let data_ready = self.dram.read(at_device, addr, bytes);
        data_ready + self.cfg.link_latency
    }

    /// A host store to device memory: posted, so steady-state stores
    /// retire at link serialization rate; only the first store in a burst
    /// exposes part of the hop while the store buffer fills. Returns the
    /// time the store retires from the requester's perspective.
    pub fn store(&mut self, now: Tick, addr: PhysAddr, bytes: u64) -> Tick {
        let first = self.stores == 0;
        self.stores += 1;
        let at_device = self.link.send(now, 16 + bytes);
        let _ = self.dram.write(at_device, addr, bytes);
        let exposure = if first {
            Tick::from_ps(
                (self.cfg.link_latency.as_ps() as f64 * self.cfg.posted_write_exposure) as u64,
            )
        } else {
            Tick::ZERO
        };
        now + exposure
            + sim_core::LinkConfig::with_gbps(Tick::ZERO, self.cfg.link_gbps).serialize_time(bytes)
    }

    /// Relative overhead of constructing `total_bytes` in device memory
    /// (vs an idealized host-memory construction of the same stream at
    /// `host_gbps`), as a fraction.
    pub fn construction_overhead(&mut self, total_bytes: u64, chunk: u64, host_gbps: f64) -> f64 {
        let mut t = Tick::ZERO;
        let mut addr = 0u64;
        while addr < total_bytes {
            t = self.store(t, PhysAddr::new(addr), chunk);
            addr += chunk;
        }
        let host = total_bytes as f64 / (host_gbps * 1e9);
        let dev = t.as_secs_f64();
        (dev - host) / host
    }

    /// Load count.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Store count.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Resets the path to idle.
    pub fn reset(&mut self) {
        self.dram.reset();
        self.link.reset();
        self.loads = 0;
        self.stores = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_pays_round_trip() {
        let mut p = CxlMemPath::new(CxlMemConfig::expander_default());
        let done = p.load(Tick::ZERO, PhysAddr::new(0x100), 64);
        assert!(done > Tick::from_ns(170), "expander load too fast: {done}");
        assert_eq!(p.loads(), 1);
    }

    #[test]
    fn stores_are_posted() {
        let mut p = CxlMemPath::new(CxlMemConfig::expander_default());
        let s = p.store(Tick::ZERO, PhysAddr::new(0x100), 64);
        let mut q = CxlMemPath::new(CxlMemConfig::expander_default());
        let l = q.load(Tick::ZERO, PhysAddr::new(0x100), 64);
        assert!(
            s < l / 4,
            "posted store {s} should be far cheaper than load {l}"
        );
    }

    #[test]
    fn construction_overhead_within_paper_bound() {
        let mut p = CxlMemPath::new(CxlMemConfig::expander_default());
        // 64 KB message built in 64 B pieces vs host DDR5 streaming.
        let ovh = p.construction_overhead(64 * 1024, 64, 24.0);
        assert!(
            ovh > 0.0 && ovh <= 0.09,
            "CXL.mem construction overhead {ovh} outside (0, 8%]"
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut p = CxlMemPath::new(CxlMemConfig::expander_default());
        p.store(Tick::ZERO, PhysAddr::new(0), 64);
        p.reset();
        assert_eq!(p.stores(), 0);
    }
}

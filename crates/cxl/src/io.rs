//! CXL.io: enumeration, the accelerator character device, and DMA.
//!
//! Paper §IV-B1: the BIOS sizes and maps BARs over configuration
//! transactions, then "a kernel driver creates `/dev/cxl_acc` and exposes
//! open, mmap and release syscalls, allowing the CPU to read and write
//! the BAR space of the CXL device via MMIO to control the device."

use crate::device::CxlDevice;
use simcxl_mem::PhysAddr;
use simcxl_pcie::config_space::DeviceId as PcieDeviceId;
use simcxl_pcie::{DmaConfig, DmaEngine, MmioConfig, MmioPort, PcieBus};
use std::collections::HashMap;

pub use simcxl_pcie::config_space::DeviceId;

/// Handle returned by [`CxlIo::open`], mirroring the `/dev/cxl_acc` fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CxlHandle(u64);

/// The CXL.io layer: a PCIe bus plus per-device MMIO ports and DMA
/// engines, with a `/dev/cxl_acc`-style open/mmap interface.
#[derive(Debug)]
pub struct CxlIo {
    bus: PcieBus,
    devices: Vec<CxlDevice>,
    mmio: Vec<MmioPort>,
    dma: Vec<DmaEngine>,
    handles: HashMap<u64, PcieDeviceId>,
    next_handle: u64,
    enumerated: bool,
}

impl CxlIo {
    /// Creates an empty CXL.io layer with its PCI hole at `mmio_base`.
    pub fn new(mmio_base: PhysAddr) -> Self {
        CxlIo {
            bus: PcieBus::new(mmio_base),
            devices: Vec::new(),
            mmio: Vec::new(),
            dma: Vec::new(),
            handles: HashMap::new(),
            next_handle: 0,
            enumerated: false,
        }
    }

    /// Attaches a device (before enumeration) with the given DMA timing.
    ///
    /// # Panics
    ///
    /// Panics if called after [`enumerate`](Self::enumerate) or the
    /// descriptor is inconsistent.
    pub fn attach(&mut self, device: CxlDevice, dma: DmaConfig) -> PcieDeviceId {
        assert!(!self.enumerated, "attach after enumeration");
        device.validate();
        let id = self.bus.attach(device.config_space());
        self.mmio
            .push(MmioPort::new(MmioConfig::from_link(&dma.link)));
        self.dma.push(DmaEngine::new(dma));
        self.devices.push(device);
        id
    }

    /// Runs BIOS enumeration: sizes BARs and assigns windows.
    pub fn enumerate(&mut self) {
        self.bus.enumerate();
        self.enumerated = true;
    }

    /// Whether enumeration has run.
    pub fn is_enumerated(&self) -> bool {
        self.enumerated
    }

    /// Opens the accelerator device (the `/dev/cxl_acc` open syscall).
    ///
    /// # Panics
    ///
    /// Panics before enumeration.
    pub fn open(&mut self, id: PcieDeviceId) -> CxlHandle {
        assert!(self.enumerated, "open before enumeration");
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, id);
        CxlHandle(h)
    }

    /// Maps BAR `bar` of an open device into the caller's address space
    /// (the mmap syscall); returns the physical window base.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle or unassigned BAR.
    pub fn mmap(&self, handle: CxlHandle, bar: usize) -> PhysAddr {
        let id = self.handles[&handle.0];
        self.bus.device(id).bars[bar]
            .base
            .expect("BAR assigned during enumeration")
    }

    /// Releases a handle (the release syscall).
    pub fn release(&mut self, handle: CxlHandle) {
        self.handles.remove(&handle.0);
    }

    /// The MMIO port of a device (doorbells).
    pub fn mmio_port(&mut self, id: PcieDeviceId) -> &mut MmioPort {
        &mut self.mmio[id.0]
    }

    /// The DMA engine of a device.
    pub fn dma_engine(&mut self, id: PcieDeviceId) -> &mut DmaEngine {
        &mut self.dma[id.0]
    }

    /// The device descriptor.
    pub fn device(&self, id: PcieDeviceId) -> &CxlDevice {
        &self.devices[id.0]
    }

    /// The underlying bus (address decode).
    pub fn bus(&self) -> &PcieBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Tick;

    fn io() -> (CxlIo, PcieDeviceId) {
        let mut io = CxlIo::new(PhysAddr::new(0xc000_0000));
        let id = io.attach(CxlDevice::type2_fpga(1 << 30), DmaConfig::fpga_400mhz());
        io.enumerate();
        (io, id)
    }

    #[test]
    fn open_mmap_release_cycle() {
        let (mut io, id) = io();
        let h = io.open(id);
        let mmio_base = io.mmap(h, 0);
        let mem_base = io.mmap(h, 1);
        assert_ne!(mmio_base, mem_base);
        assert_eq!(io.bus().decode(mmio_base), Some((id, 0)));
        io.release(h);
    }

    #[test]
    #[should_panic]
    fn open_before_enumeration_panics() {
        let mut io = CxlIo::new(PhysAddr::new(0xc000_0000));
        let id = io.attach(CxlDevice::type1_fpga(), DmaConfig::fpga_400mhz());
        let _ = io.open(id);
    }

    #[test]
    fn doorbell_and_dma_usable() {
        let (mut io, id) = io();
        let ring = io.mmio_port(id).write(Tick::ZERO);
        assert!(ring > Tick::ZERO);
        let done = io.dma_engine(id).transfer(ring, 4096);
        assert!(done > ring);
    }

    #[test]
    #[should_panic]
    fn attach_after_enumeration_panics() {
        let (mut io, _) = io();
        io.attach(CxlDevice::type1_fpga(), DmaConfig::fpga_400mhz());
    }
}

//! CXL sub-protocols and device models (SimCXL §IV).
//!
//! Built on the PCIe physical layer ([`simcxl_pcie`]), CXL adds three
//! sub-protocols:
//!
//! * **CXL.io** ([`io`]) — PCIe-equivalent enumeration, configuration,
//!   MMIO and DMA.
//! * **CXL.cache** ([`protocol`], backed by [`simcxl_coherence`]) — lets a
//!   device coherently cache host memory through its host-memory cache
//!   (HMC) and device coherency engine (DCOH).
//! * **CXL.mem** ([`mem_path`]) — lets the host load/store device-attached
//!   memory.
//!
//! Combining them yields the three device types ([`device::DeviceType`]):
//! Type-1 (.io+.cache), Type-2 (all three) and Type-3 (.io+.mem memory
//! expanders). [`ats`] models the address translation service (device ATC
//! plus host IOMMU) and [`switch`] the CXL fabric with its distributed
//! resource scheduler (fabric manager).

pub mod ats;
pub mod device;
pub mod flit;
pub mod io;
pub mod mem_path;
pub mod protocol;
pub mod switch;

pub use ats::{Atc, AtcConfig, IommuConfig, TranslationOutcome};
pub use device::{CxlDevice, DeviceType};
pub use flit::FlitCounter;
pub use io::CxlIo;
pub use mem_path::{CxlMemConfig, CxlMemPath};
pub use protocol::SubProtocol;
pub use switch::{FabricManager, PoolResource, SwitchConfig};

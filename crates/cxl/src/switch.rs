//! CXL switch fabric and the distributed fabric manager.
//!
//! Paper §III-C1: "One or more CXL switches compose a CXL fabric. A
//! distributed resource scheduler (fabric manager) is implemented in each
//! switch to allocate/release fabric-attached memory and XPU resources to
//! a specific host." This module models that resource-pooling control
//! plane (allocation, binding, release) plus the extra per-hop latency a
//! switched topology adds to the data plane.

use sim_core::Tick;
use std::collections::HashMap;
use std::fmt;

/// A fabric-attached resource in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolResource {
    /// Fabric-attached memory, in bytes.
    Memory {
        /// Capacity of the region.
        bytes: u64,
    },
    /// An XPU accelerator.
    Xpu,
}

/// Identifies a host port on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostPort(pub usize);

/// Identifies a pooled resource instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(u64);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res{}", self.0)
    }
}

/// Switch timing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Per-hop forwarding latency added to the data plane.
    pub hop_latency: Tick,
    /// Number of switch hops between a host and pooled devices.
    pub hops: u32,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            hop_latency: Tick::from_ns(25),
            hops: 1,
        }
    }
}

impl SwitchConfig {
    /// Total extra one-way latency through the fabric.
    pub fn traversal(&self) -> Tick {
        self.hop_latency * self.hops as u64
    }
}

/// Errors returned by the [`FabricManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// No unbound resource satisfies the request.
    NoneAvailable,
    /// The resource is not bound to the releasing host.
    NotBound,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::NoneAvailable => f.write_str("no matching unbound resource available"),
            FabricError::NotBound => f.write_str("resource is not bound to this host"),
        }
    }
}

impl std::error::Error for FabricError {}

/// The per-switch resource scheduler.
#[derive(Debug)]
pub struct FabricManager {
    config: SwitchConfig,
    resources: HashMap<ResourceId, (PoolResource, Option<HostPort>)>,
    next_id: u64,
}

impl FabricManager {
    /// Creates a manager with an empty pool.
    pub fn new(config: SwitchConfig) -> Self {
        FabricManager {
            config,
            resources: HashMap::new(),
            next_id: 0,
        }
    }

    /// The switch timing configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Registers a resource into the pool; returns its id.
    pub fn register(&mut self, res: PoolResource) -> ResourceId {
        let id = ResourceId(self.next_id);
        self.next_id += 1;
        self.resources.insert(id, (res, None));
        id
    }

    /// Allocates an unbound resource matching `want` to `host`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NoneAvailable`] if nothing matches. For
    /// memory, any unbound region with at least the requested capacity
    /// matches.
    pub fn allocate(
        &mut self,
        host: HostPort,
        want: PoolResource,
    ) -> Result<ResourceId, FabricError> {
        let mut best: Option<(ResourceId, u64)> = None;
        for (&id, &(res, bound)) in &self.resources {
            if bound.is_some() {
                continue;
            }
            match (want, res) {
                (PoolResource::Xpu, PoolResource::Xpu) => {
                    best = Some((id, 0));
                    break;
                }
                (PoolResource::Memory { bytes: need }, PoolResource::Memory { bytes: have })
                    if have >= need
                    // Best fit: smallest adequate region.
                    && best.is_none_or(|(_, b)| have < b) =>
                {
                    best = Some((id, have));
                }
                _ => {}
            }
        }
        let (id, _) = best.ok_or(FabricError::NoneAvailable)?;
        self.resources.get_mut(&id).expect("exists").1 = Some(host);
        Ok(id)
    }

    /// Releases a resource previously bound to `host`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NotBound`] if `id` is not bound to `host`.
    pub fn release(&mut self, host: HostPort, id: ResourceId) -> Result<(), FabricError> {
        match self.resources.get_mut(&id) {
            Some((_, bound)) if *bound == Some(host) => {
                *bound = None;
                Ok(())
            }
            _ => Err(FabricError::NotBound),
        }
    }

    /// The host a resource is bound to, if any.
    pub fn binding(&self, id: ResourceId) -> Option<HostPort> {
        self.resources.get(&id).and_then(|&(_, b)| b)
    }

    /// Count of unbound resources.
    pub fn available(&self) -> usize {
        self.resources.values().filter(|(_, b)| b.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_xpu() {
        let mut fm = FabricManager::new(SwitchConfig::default());
        let _x = fm.register(PoolResource::Xpu);
        let id = fm.allocate(HostPort(0), PoolResource::Xpu).unwrap();
        assert_eq!(fm.binding(id), Some(HostPort(0)));
        assert_eq!(
            fm.allocate(HostPort(1), PoolResource::Xpu),
            Err(FabricError::NoneAvailable)
        );
        fm.release(HostPort(0), id).unwrap();
        assert!(fm.allocate(HostPort(1), PoolResource::Xpu).is_ok());
    }

    #[test]
    fn memory_best_fit() {
        let mut fm = FabricManager::new(SwitchConfig::default());
        fm.register(PoolResource::Memory { bytes: 64 << 30 });
        fm.register(PoolResource::Memory { bytes: 16 << 30 });
        let id = fm
            .allocate(HostPort(0), PoolResource::Memory { bytes: 8 << 30 })
            .unwrap();
        // Should pick the 16 GB region.
        let (res, _) = fm.resources[&id];
        assert_eq!(res, PoolResource::Memory { bytes: 16 << 30 });
    }

    #[test]
    fn release_requires_owner() {
        let mut fm = FabricManager::new(SwitchConfig::default());
        fm.register(PoolResource::Xpu);
        let id = fm.allocate(HostPort(0), PoolResource::Xpu).unwrap();
        assert_eq!(fm.release(HostPort(1), id), Err(FabricError::NotBound));
        assert_eq!(fm.binding(id), Some(HostPort(0)));
    }

    #[test]
    fn traversal_scales_with_hops() {
        let one = SwitchConfig::default();
        let two = SwitchConfig { hops: 2, ..one };
        assert_eq!(two.traversal(), one.traversal() * 2);
    }

    #[test]
    fn available_counts_unbound() {
        let mut fm = FabricManager::new(SwitchConfig::default());
        fm.register(PoolResource::Xpu);
        fm.register(PoolResource::Memory { bytes: 1 << 30 });
        assert_eq!(fm.available(), 2);
        fm.allocate(HostPort(0), PoolResource::Xpu).unwrap();
        assert_eq!(fm.available(), 1);
    }
}

//! 68-byte flit accounting for CXL 1.1 links.
//!
//! CXL 1.1/2.0 protocol traffic is carried in 68-byte flits (64 B of
//! slots + 2 B CRC + 2 B protocol ID), each holding four 16-byte slots.
//! A header slot carries up to one request/response; data transfers
//! occupy four slots. This counter converts message mixes into wire
//! bytes so link-efficiency effects show up in bandwidth experiments.

/// Flit geometry constants.
pub const FLIT_BYTES: u64 = 68;
/// Usable slot bytes per flit.
pub const SLOT_BYTES: u64 = 16;
/// Slots per flit.
pub const SLOTS_PER_FLIT: u64 = 4;

/// Accumulates protocol slots and reports flit-level wire bytes.
///
/// ```
/// use simcxl_cxl::FlitCounter;
/// let mut f = FlitCounter::new();
/// f.add_header(); // one request
/// f.add_data(64); // one cacheline
/// assert_eq!(f.slots(), 5);
/// assert_eq!(f.flits(), 2); // 5 slots round up to 2 flits
/// assert_eq!(f.wire_bytes(), 136);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlitCounter {
    slots: u64,
    replayed: u64,
}

impl FlitCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one header slot (request, response, or GO message).
    pub fn add_header(&mut self) {
        self.slots += 1;
    }

    /// Adds data payload, consuming one slot per 16 bytes.
    pub fn add_data(&mut self, bytes: u64) {
        self.slots += bytes.div_ceil(SLOT_BYTES);
    }

    /// Total slots accumulated.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Flits needed to carry the accumulated slots.
    pub fn flits(&self) -> u64 {
        self.slots.div_ceil(SLOTS_PER_FLIT)
    }

    /// Wire bytes for the accumulated goodput traffic (excludes
    /// link-layer replays; see [`total_wire_bytes`](Self::total_wire_bytes)).
    pub fn wire_bytes(&self) -> u64 {
        self.flits() * FLIT_BYTES
    }

    /// Records `flits` re-transmitted by the link-layer retry machinery
    /// (CRC nak → replay from the retry buffer). Replays repeat wire
    /// traffic at flit granularity without carrying new payload slots —
    /// a degraded link burns bandwidth that never shows up as goodput.
    pub fn add_replay(&mut self, flits: u64) {
        self.replayed += flits;
    }

    /// Flits re-transmitted by link-layer retry.
    pub fn replay_flits(&self) -> u64 {
        self.replayed
    }

    /// All flits that crossed the wire: goodput plus replays.
    pub fn total_flits(&self) -> u64 {
        self.flits() + self.replayed
    }

    /// Wire bytes including replay overhead.
    pub fn total_wire_bytes(&self) -> u64 {
        self.total_flits() * FLIT_BYTES
    }

    /// Protocol efficiency: payload bytes / wire bytes (replays
    /// included, so retries degrade the reported efficiency).
    pub fn efficiency(&self, payload_bytes: u64) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        payload_bytes as f64 / self.total_wire_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter() {
        let f = FlitCounter::new();
        assert_eq!(f.flits(), 0);
        assert_eq!(f.wire_bytes(), 0);
        assert_eq!(f.efficiency(0), 0.0);
    }

    #[test]
    fn one_request_one_flit() {
        let mut f = FlitCounter::new();
        f.add_header();
        assert_eq!(f.flits(), 1);
        assert_eq!(f.wire_bytes(), 68);
    }

    #[test]
    fn cacheline_with_header() {
        let mut f = FlitCounter::new();
        f.add_header();
        f.add_data(64);
        assert_eq!(f.slots(), 5);
        assert_eq!(f.flits(), 2);
        // 64 useful bytes over 136 wire bytes: ~47% for a single
        // header+data exchange; sustained streams pack better.
        assert!(f.efficiency(64) > 0.45 && f.efficiency(64) < 0.5);
    }

    #[test]
    fn replays_burn_wire_bytes_without_goodput() {
        let mut f = FlitCounter::new();
        f.add_header();
        f.add_data(64); // 2 goodput flits
        let clean_eff = f.efficiency(64);
        f.add_replay(2); // the whole transfer retried once
        assert_eq!(f.flits(), 2, "goodput flits unchanged");
        assert_eq!(f.replay_flits(), 2);
        assert_eq!(f.total_flits(), 4);
        assert_eq!(f.total_wire_bytes(), 272);
        assert_eq!(f.wire_bytes(), 136);
        assert!(
            f.efficiency(64) < clean_eff / 1.9,
            "replays halve efficiency"
        );
    }

    #[test]
    fn streams_pack_slots() {
        let mut f = FlitCounter::new();
        for _ in 0..16 {
            f.add_header();
            f.add_data(64);
        }
        // 16*(1+4) = 80 slots = 20 flits.
        assert_eq!(f.flits(), 20);
        let eff = f.efficiency(16 * 64);
        assert!(eff > 0.75, "sustained efficiency {eff}");
    }
}

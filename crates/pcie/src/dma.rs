//! The descriptor-based DMA engine.
//!
//! Captures the two DMA properties the paper measures: a large fixed
//! per-transfer setup cost (descriptor fetch, doorbell, engine start)
//! that dominates small messages (Fig. 14), and pipelined descriptor
//! processing whose per-descriptor gap bounds small-message throughput
//! while TLP framing overhead bounds bulk throughput (Fig. 16).

use crate::link::{PcieLink, PcieLinkConfig};
use sim_core::Tick;

/// Transfer direction (kept for statistics; timing is symmetric, as the
/// paper notes PCIe PHY read/write performance is symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Host memory to device.
    HostToDevice,
    /// Device to host memory.
    DeviceToHost,
}

/// Configuration of a [`DmaEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Underlying link (latency + TLP framing). The link's raw bandwidth
    /// should be set to the *engine datapath* rate when the device, not
    /// the slot, is the bottleneck (25.6 GB/s for the 400 MHz FPGA).
    pub link: PcieLinkConfig,
    /// Fixed per-transfer setup: doorbell, descriptor fetch, engine start.
    pub setup_latency: Tick,
    /// Minimum spacing between descriptor launches (pipelining limit).
    pub desc_gap: Tick,
    /// Device-side modify time used by [`DmaEngine::ordered_rmw`].
    pub modify_latency: Tick,
}

impl DmaConfig {
    /// Calibrated to the paper's PCIe-FPGA at 400 MHz: DMA@64 B latency
    /// ≈ 2.17 µs and bandwidth 0.92 GB/s, rising to ≈ 22.9 GB/s at 256 KB.
    pub fn fpga_400mhz() -> Self {
        DmaConfig {
            link: PcieLinkConfig {
                latency: Tick::from_ns(240),
                ..PcieLinkConfig::gen5_x16()
            }
            .with_engine_gbps(25.6),
            setup_latency: Tick::from_ns(1_920),
            desc_gap: Tick::from_ps(69_600),
            modify_latency: Tick::from_ns(10),
        }
    }

    /// Calibrated to the paper's PCIe-ASIC at 1.5 GHz: DMA@64 B latency
    /// ≈ 1.17 µs and bandwidth 1.82 GB/s.
    pub fn asic_1500mhz() -> Self {
        DmaConfig {
            link: PcieLinkConfig {
                latency: Tick::from_ns(160),
                ..PcieLinkConfig::gen5_x16()
            }
            .with_engine_gbps(50.0),
            setup_latency: Tick::from_ns(980),
            desc_gap: Tick::from_ps(35_200),
            modify_latency: Tick::from_ns(3),
        }
    }
}

impl PcieLinkConfig {
    /// Caps the link's serialization rate at the device datapath rate
    /// (GB/s); used when the endpoint, not the slot, bounds throughput.
    pub fn with_engine_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "engine rate must be positive");
        self.engine_bytes_per_sec = Some(gbps * 1e9);
        self
    }
}

/// A DMA engine bound to one link.
///
/// ```
/// use simcxl_pcie::{DmaConfig, DmaEngine};
/// use sim_core::Tick;
///
/// let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
/// let done = dma.transfer(Tick::ZERO, 64);
/// // Small transfers pay the full setup cost: ~2.2 µs.
/// assert!(done > Tick::from_us(2));
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    cfg: DmaConfig,
    link: PcieLink,
    engine_free: Tick,
    ordered_free: Tick,
    transfers: u64,
    payload_bytes: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new(cfg: DmaConfig) -> Self {
        let link = PcieLink::new(cfg.link);
        DmaEngine {
            cfg,
            link,
            engine_free: Tick::ZERO,
            ordered_free: Tick::ZERO,
            transfers: 0,
            payload_bytes: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.cfg
    }

    /// Launches one transfer of `bytes`; returns its completion time.
    /// Back-to-back transfers pipeline, separated by the descriptor gap
    /// and link serialization.
    pub fn transfer(&mut self, now: Tick, bytes: u64) -> Tick {
        assert!(bytes > 0, "empty DMA transfer");
        let start = now.max(self.engine_free);
        self.engine_free = start + self.cfg.desc_gap;
        self.transfers += 1;
        self.payload_bytes += bytes;
        self.link.send(start + self.cfg.setup_latency, bytes)
    }

    /// Unloaded latency of a single transfer (closed form; used by the
    /// Fig. 14 sweep).
    pub fn unloaded_latency(&self, bytes: u64) -> Tick {
        let ser = sim_core::LinkConfig {
            latency: Tick::ZERO,
            bytes_per_sec: self.cfg.link.raw_bytes_per_sec(),
        }
        .serialize_time(self.cfg.link.wire_bytes(bytes));
        self.cfg.setup_latency + ser + self.cfg.link.latency
    }

    /// An ordered read-modify-write for PCIe RAO offloading
    /// (paper §V-A1): DMA read, modify, DMA write, then wait for the
    /// write acknowledgment before the next ordered op may start, to
    /// avoid RAW hazards under PCIe's relaxed ordering.
    pub fn ordered_rmw(&mut self, now: Tick, bytes: u64) -> Tick {
        let start = now.max(self.ordered_free);
        let read_done = self.transfer(start, bytes);
        let write_done = self.transfer(read_done + self.cfg.modify_latency, bytes);
        // The ack must return before the next RMW to the same engine.
        let ack = write_done + self.cfg.link.latency;
        self.ordered_free = ack;
        ack
    }

    /// Sustained bandwidth (bytes/s) streaming `count` transfers of
    /// `bytes` each, starting from idle.
    pub fn stream_bandwidth(&mut self, bytes: u64, count: u64) -> f64 {
        assert!(count > 0, "empty stream");
        let mut last = Tick::ZERO;
        for _ in 0..count {
            last = self.transfer(Tick::ZERO, bytes);
        }
        (bytes * count) as f64 / last.as_secs_f64()
    }

    /// Transfers launched so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Payload bytes moved so far.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Resets the engine and its link to idle.
    pub fn reset(&mut self) {
        self.link.reset();
        self.engine_free = Tick::ZERO;
        self.ordered_free = Tick::ZERO;
        self.transfers = 0;
        self.payload_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_transfer_latency_near_calibration() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let done = dma.transfer(Tick::ZERO, 64);
        let ns = done.as_ns_f64();
        assert!(
            (ns - 2170.0).abs() / 2170.0 < 0.05,
            "64 B DMA latency {ns} ns"
        );
    }

    #[test]
    fn latency_flat_below_8k_then_grows() {
        let dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let l64 = dma.unloaded_latency(64).as_us_f64();
        let l8k = dma.unloaded_latency(8 * 1024).as_us_f64();
        let l256k = dma.unloaded_latency(256 * 1024).as_us_f64();
        assert!(l8k < l64 * 1.3, "8 KB not roughly flat: {l8k} vs {l64}");
        assert!(l256k > l64 * 4.0, "256 KB should be transfer-dominated");
    }

    #[test]
    fn small_message_bandwidth_near_calibration() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let bw = dma.stream_bandwidth(64, 2048) / 1e9;
        assert!(
            (bw - 0.92).abs() / 0.92 < 0.05,
            "64 B DMA bandwidth {bw} GB/s"
        );
    }

    #[test]
    fn bulk_bandwidth_near_calibration() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let bw = dma.stream_bandwidth(256 * 1024, 64) / 1e9;
        assert!(
            (bw - 22.9).abs() / 22.9 < 0.08,
            "256 KB DMA bandwidth {bw} GB/s"
        );
    }

    #[test]
    fn ordered_rmw_serializes() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let a = dma.ordered_rmw(Tick::ZERO, 64);
        let b = dma.ordered_rmw(Tick::ZERO, 64);
        assert!(
            b >= a * 2 - Tick::from_ns(1),
            "RMWs must not overlap: {a} {b}"
        );
        // Each RMW costs two transfers plus the ack wait: well over 4 µs.
        assert!(a > Tick::from_us(4), "per-RMW cost {a}");
    }

    #[test]
    fn asic_profile_is_faster() {
        let mut fpga = DmaEngine::new(DmaConfig::fpga_400mhz());
        let mut asic = DmaEngine::new(DmaConfig::asic_1500mhz());
        let f = fpga.transfer(Tick::ZERO, 64);
        let a = asic.transfer(Tick::ZERO, 64);
        assert!(a < f);
        let ns = a.as_ns_f64();
        assert!(
            (ns - 1170.0).abs() / 1170.0 < 0.06,
            "ASIC 64 B latency {ns}"
        );
    }

    #[test]
    fn reset_restores_idle() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        dma.transfer(Tick::ZERO, 4096);
        dma.reset();
        assert_eq!(dma.transfers(), 0);
        let done = dma.transfer(Tick::ZERO, 64);
        assert!(done < Tick::from_us(3));
    }

    #[test]
    #[should_panic]
    fn zero_byte_transfer_rejected() {
        let mut dma = DmaEngine::new(DmaConfig::fpga_400mhz());
        let _ = dma.transfer(Tick::ZERO, 0);
    }
}

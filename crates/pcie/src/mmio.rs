//! Strictly-ordered MMIO.
//!
//! Paper §II-A1: "PCIe's high per-transaction latency and strict
//! write-ordering, which allows only one outstanding write, limit the
//! MMIO performance." Reads are uncached round trips; writes are posted
//! but serialized: a write may not leave the core until the previous one
//! is acknowledged at the device.

use crate::link::PcieLinkConfig;
use sim_core::Tick;

/// Configuration of an [`MmioPort`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmioConfig {
    /// One-way link latency to the device.
    pub link_latency: Tick,
    /// Device-side register access time.
    pub device_latency: Tick,
}

impl MmioConfig {
    /// Derives MMIO timing from a PCIe link configuration.
    pub fn from_link(link: &PcieLinkConfig) -> Self {
        MmioConfig {
            link_latency: link.latency,
            device_latency: Tick::from_ns(20),
        }
    }
}

/// An uncached register window with one-outstanding-write ordering.
///
/// ```
/// use simcxl_pcie::{MmioConfig, MmioPort};
/// use sim_core::Tick;
///
/// let mut p = MmioPort::new(MmioConfig {
///     link_latency: Tick::from_ns(200),
///     device_latency: Tick::from_ns(20),
/// });
/// let w1 = p.write(Tick::ZERO);
/// let w2 = p.write(Tick::ZERO); // must wait for w1's ack
/// assert!(w2 > w1 * 2);
/// ```
#[derive(Debug, Clone)]
pub struct MmioPort {
    cfg: MmioConfig,
    write_free_at: Tick,
    reads: u64,
    writes: u64,
}

impl MmioPort {
    /// Creates an idle port.
    pub fn new(cfg: MmioConfig) -> Self {
        MmioPort {
            cfg,
            write_free_at: Tick::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// An uncached read: full round trip. Returns data-available time.
    pub fn read(&mut self, now: Tick) -> Tick {
        self.reads += 1;
        now + self.cfg.link_latency * 2 + self.cfg.device_latency
    }

    /// A write: reaches the device after one traversal, but the *next*
    /// write may not start until this one's ack returns. Returns the time
    /// the write is visible at the device.
    pub fn write(&mut self, now: Tick) -> Tick {
        self.writes += 1;
        let start = now.max(self.write_free_at);
        let at_device = start + self.cfg.link_latency + self.cfg.device_latency;
        // Ack travels back before the next write may issue.
        self.write_free_at = at_device + self.cfg.link_latency;
        at_device
    }

    /// Number of reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets ordering state and counters.
    pub fn reset(&mut self) {
        self.write_free_at = Tick::ZERO;
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> MmioPort {
        MmioPort::new(MmioConfig {
            link_latency: Tick::from_ns(200),
            device_latency: Tick::from_ns(20),
        })
    }

    #[test]
    fn read_is_round_trip() {
        let mut p = port();
        assert_eq!(p.read(Tick::ZERO), Tick::from_ns(420));
        assert_eq!(p.reads(), 1);
    }

    #[test]
    fn writes_serialize() {
        let mut p = port();
        let w1 = p.write(Tick::ZERO);
        assert_eq!(w1, Tick::from_ns(220));
        let w2 = p.write(Tick::ZERO);
        // Second write waits for w1's ack at 420 ns, lands at 640 ns.
        assert_eq!(w2, Tick::from_ns(640));
        assert_eq!(p.writes(), 2);
    }

    #[test]
    fn spaced_writes_do_not_stall() {
        let mut p = port();
        let _ = p.write(Tick::ZERO);
        let w2 = p.write(Tick::from_us(1));
        assert_eq!(w2, Tick::from_us(1) + Tick::from_ns(220));
    }

    #[test]
    fn reset_restores_idle() {
        let mut p = port();
        p.write(Tick::ZERO);
        p.reset();
        assert_eq!(p.write(Tick::ZERO), Tick::from_ns(220));
        assert_eq!(p.writes(), 1);
    }
}

//! PCIe substrate: link/TLP model, configuration space with BAR
//! enumeration, strictly-ordered MMIO, and a descriptor-based DMA engine.
//!
//! This crate models the *baseline* interconnect the paper compares
//! against (PCIe-FPGA / PCIe-ASIC): high per-transaction latency, strict
//! write ordering for MMIO, and DMA transfers with substantial per-
//! transfer setup overhead that only amortizes for bulk messages
//! (paper §II-A). CXL.io reuses these models for device enumeration and
//! bulk DMA (paper §IV-B1).

pub mod config_space;
pub mod dma;
pub mod link;
pub mod mmio;

pub use config_space::{Bar, BarKind, ConfigSpace, PcieBus};
pub use dma::{DmaConfig, DmaDirection, DmaEngine};
pub use link::{PcieGen, PcieLink, PcieLinkConfig};
pub use mmio::{MmioConfig, MmioPort};

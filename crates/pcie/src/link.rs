//! PCIe link and TLP (transaction-layer packet) accounting.

use sim_core::{Link, LinkConfig, Tick};

/// PCIe generation (per-lane raw rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 8 GT/s, 128b/130b encoding.
    Gen3,
    /// 16 GT/s.
    Gen4,
    /// 32 GT/s (the paper's testbed: PCIe 5.0).
    Gen5,
}

impl PcieGen {
    /// Raw per-lane rate in GT/s.
    pub fn gt_per_sec(self) -> f64 {
        match self {
            PcieGen::Gen3 => 8.0,
            PcieGen::Gen4 => 16.0,
            PcieGen::Gen5 => 32.0,
        }
    }

    /// Effective per-lane payload bytes/s after 128b/130b encoding.
    pub fn lane_bytes_per_sec(self) -> f64 {
        self.gt_per_sec() * 1e9 / 8.0 * (128.0 / 130.0)
    }
}

/// Configuration of a [`PcieLink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLinkConfig {
    /// Link generation.
    pub gen: PcieGen,
    /// Lane count (×1/×4/×8/×16).
    pub lanes: u32,
    /// One-way propagation latency (PHY + retimers + switch hops).
    pub latency: Tick,
    /// Maximum TLP payload in bytes.
    pub max_payload: u64,
    /// Per-TLP header/framing/DLLP overhead in bytes.
    pub tlp_overhead: u64,
    /// Optional endpoint datapath rate (bytes/s) overriding the slot
    /// rate when the device, not the link, bounds throughput.
    pub engine_bytes_per_sec: Option<f64>,
}

impl PcieLinkConfig {
    /// The paper's testbed slot: Gen5 ×16.
    pub fn gen5_x16() -> Self {
        PcieLinkConfig {
            gen: PcieGen::Gen5,
            lanes: 16,
            latency: Tick::from_ns(200),
            max_payload: 512,
            tlp_overhead: 60,
            engine_bytes_per_sec: None,
        }
    }

    /// Gen5 ×8 (the paper's memory-expander slot).
    pub fn gen5_x8() -> Self {
        PcieLinkConfig {
            lanes: 8,
            ..Self::gen5_x16()
        }
    }

    /// Raw link bandwidth in bytes/s (the slot rate, or the endpoint
    /// datapath rate when that is the bottleneck).
    pub fn raw_bytes_per_sec(&self) -> f64 {
        let slot = self.gen.lane_bytes_per_sec() * self.lanes as f64;
        match self.engine_bytes_per_sec {
            Some(engine) => engine.min(slot),
            None => slot,
        }
    }

    /// Number of TLPs needed for `bytes` of payload.
    pub fn tlp_count(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.max_payload).max(1)
    }

    /// Total wire bytes (payload + per-TLP overhead) for `bytes`.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        bytes + self.tlp_count(bytes) * self.tlp_overhead
    }

    /// Payload efficiency for a message of `bytes`.
    pub fn efficiency(&self, bytes: u64) -> f64 {
        bytes as f64 / self.wire_bytes(bytes) as f64
    }
}

/// A PCIe link: serialization at raw bandwidth over TLP wire bytes plus
/// propagation latency.
///
/// ```
/// use simcxl_pcie::{PcieLink, PcieLinkConfig};
/// use sim_core::Tick;
///
/// let mut link = PcieLink::new(PcieLinkConfig::gen5_x16());
/// let arrival = link.send(Tick::ZERO, 64);
/// assert!(arrival > link.config().latency);
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    config: PcieLinkConfig,
    inner: Link,
}

impl PcieLink {
    /// Creates an idle link.
    pub fn new(config: PcieLinkConfig) -> Self {
        let inner = Link::new(LinkConfig {
            latency: config.latency,
            bytes_per_sec: config.raw_bytes_per_sec(),
        });
        PcieLink { config, inner }
    }

    /// The link configuration.
    pub fn config(&self) -> &PcieLinkConfig {
        &self.config
    }

    /// Sends a `bytes`-payload message; returns arrival at the far end.
    pub fn send(&mut self, now: Tick, bytes: u64) -> Tick {
        self.inner.send(now, self.config.wire_bytes(bytes))
    }

    /// Sends a `bytes`-payload message that is nak'd and replayed
    /// `retries` times before it gets through; returns arrival at the
    /// far end. Each failed attempt occupies the channel for its full
    /// serialization (the wire bytes really crossed — the CRC check
    /// failed at the receiver) and the sender backs off exponentially
    /// (`backoff`, `2·backoff`, `4·backoff`, …) before re-arming, so a
    /// degraded link both inflates latency and burns bandwidth.
    pub fn send_with_retries(
        &mut self,
        now: Tick,
        bytes: u64,
        retries: u32,
        backoff: Tick,
    ) -> Tick {
        let mut at = now;
        for attempt in 0..retries {
            // The failed attempt serializes fully; its "arrival" is when
            // the nak comes back and the replay may start.
            at = self.inner.send(at, self.config.wire_bytes(bytes));
            at += backoff * (1u64 << attempt.min(31));
        }
        self.inner.send(at, self.config.wire_bytes(bytes))
    }

    /// When the channel next becomes free.
    pub fn free_at(&self) -> Tick {
        self.inner.free_at()
    }

    /// Total payload+overhead bytes sent.
    pub fn wire_bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    /// Resets occupancy and counters.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen5_x16_raw_bandwidth() {
        let c = PcieLinkConfig::gen5_x16();
        let bw = c.raw_bytes_per_sec() / 1e9;
        assert!((bw - 63.0).abs() < 1.0, "unexpected raw bw {bw}");
    }

    #[test]
    fn tlp_segmentation() {
        let c = PcieLinkConfig::gen5_x16();
        assert_eq!(c.tlp_count(64), 1);
        assert_eq!(c.tlp_count(512), 1);
        assert_eq!(c.tlp_count(513), 2);
        assert_eq!(c.tlp_count(4096), 8);
        assert_eq!(c.wire_bytes(64), 124);
        assert_eq!(c.wire_bytes(1024), 1024 + 120);
    }

    #[test]
    fn efficiency_improves_with_size() {
        let c = PcieLinkConfig::gen5_x16();
        assert!(c.efficiency(64) < c.efficiency(512));
        assert!(c.efficiency(512) > 0.89 && c.efficiency(512) < 0.90);
    }

    #[test]
    fn send_includes_latency_and_serialization() {
        let mut l = PcieLink::new(PcieLinkConfig::gen5_x16());
        let a1 = l.send(Tick::ZERO, 4096);
        let a2 = l.send(Tick::ZERO, 4096);
        assert!(a2 > a1);
        assert!(a1 > l.config().latency);
    }

    #[test]
    fn retries_inflate_latency_and_wire_bytes() {
        let clean = {
            let mut l = PcieLink::new(PcieLinkConfig::gen5_x16());
            (l.send(Tick::ZERO, 4096), l.wire_bytes_sent())
        };
        let mut l = PcieLink::new(PcieLinkConfig::gen5_x16());
        let a = l.send_with_retries(Tick::ZERO, 4096, 2, Tick::from_ns(100));
        // Three serializations + 100ns + 200ns of backoff.
        assert!(a >= clean.0 + Tick::from_ns(300));
        assert_eq!(l.wire_bytes_sent(), 3 * clean.1);
        // Zero retries degenerates to a plain send.
        let mut l2 = PcieLink::new(PcieLinkConfig::gen5_x16());
        assert_eq!(
            l2.send_with_retries(Tick::ZERO, 4096, 0, Tick::from_ns(100)),
            clean.0
        );
    }

    #[test]
    fn fewer_lanes_slower() {
        let mut x16 = PcieLink::new(PcieLinkConfig::gen5_x16());
        let mut x8 = PcieLink::new(PcieLinkConfig::gen5_x8());
        let a16 = x16.send(Tick::ZERO, 1 << 20);
        let a8 = x8.send(Tick::ZERO, 1 << 20);
        assert!(a8 > a16);
    }
}

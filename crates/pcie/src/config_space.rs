//! PCI configuration space and BIOS-style BAR enumeration.
//!
//! Paper §IV-B1: "The CXL.io sub-protocol handles device enumeration and
//! configuration during system initialization. The BIOS performs CXL.io
//! configuration reads to determine the size of each BAR register space,
//! maps the corresponding physical address range, and writes the base
//! addresses back via configuration writes."

use simcxl_mem::{AddrRange, PhysAddr};
use std::fmt;

/// What a BAR window maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarKind {
    /// Memory-mapped I/O registers (doorbells, rings).
    Mmio,
    /// Device-attached memory exposed to the host (CXL.mem-style window).
    DeviceMemory,
}

/// One base address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bar {
    /// Window kind.
    pub kind: BarKind,
    /// Window size in bytes (must be a power of two, ≥ 4 KiB).
    pub size: u64,
    /// Assigned base, once enumerated.
    pub base: Option<PhysAddr>,
}

impl Bar {
    /// Declares an unassigned BAR.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two of at least 4 KiB.
    pub fn new(kind: BarKind, size: u64) -> Self {
        assert!(
            size.is_power_of_two() && size >= 4096,
            "BAR size must be a power of two >= 4096, got {size}"
        );
        Bar {
            kind,
            size,
            base: None,
        }
    }

    /// The mapped range, if enumerated.
    pub fn range(&self) -> Option<AddrRange> {
        self.base.map(|b| AddrRange::new(b, self.size))
    }
}

/// Type-0 configuration-space header for one endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    /// Vendor id (e.g. 0x8086).
    pub vendor_id: u16,
    /// Device id.
    pub device_id: u16,
    /// Class code (0x0502 would be a CXL memory device, etc.).
    pub class: u16,
    /// Base address registers (up to 6).
    pub bars: Vec<Bar>,
}

impl ConfigSpace {
    /// Creates a header with no BARs.
    pub fn new(vendor_id: u16, device_id: u16, class: u16) -> Self {
        ConfigSpace {
            vendor_id,
            device_id,
            class,
            bars: Vec::new(),
        }
    }

    /// Declares a BAR; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if six BARs already exist.
    pub fn add_bar(&mut self, bar: Bar) -> usize {
        assert!(self.bars.len() < 6, "PCI headers have at most 6 BARs");
        self.bars.push(bar);
        self.bars.len() - 1
    }

    /// The "write all-ones, read back" sizing probe: returns the mask a
    /// real BIOS would observe for BAR `idx`.
    pub fn sizing_mask(&self, idx: usize) -> u64 {
        !(self.bars[idx].size - 1)
    }
}

/// Identifies an enumerated device on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "00:{:02x}.0", self.0)
    }
}

/// A root-port bus that enumerates endpoints and assigns BAR windows.
#[derive(Debug, Default)]
pub struct PcieBus {
    devices: Vec<ConfigSpace>,
    next_base: u64,
}

impl PcieBus {
    /// Creates a bus that allocates MMIO/device windows upward from
    /// `mmio_base` (the BIOS's PCI hole).
    pub fn new(mmio_base: PhysAddr) -> Self {
        PcieBus {
            devices: Vec::new(),
            next_base: mmio_base.raw(),
        }
    }

    /// Attaches an endpoint (before enumeration).
    pub fn attach(&mut self, config: ConfigSpace) -> DeviceId {
        self.devices.push(config);
        DeviceId(self.devices.len() - 1)
    }

    /// Enumerates every device: sizes each BAR, allocates a
    /// naturally-aligned window and writes the base back.
    pub fn enumerate(&mut self) {
        for dev in &mut self.devices {
            for bar in &mut dev.bars {
                if bar.base.is_some() {
                    continue;
                }
                // Natural alignment.
                let aligned = self.next_base.div_ceil(bar.size) * bar.size;
                bar.base = Some(PhysAddr::new(aligned));
                self.next_base = aligned + bar.size;
            }
        }
    }

    /// Configuration space of `id`.
    pub fn device(&self, id: DeviceId) -> &ConfigSpace {
        &self.devices[id.0]
    }

    /// Finds which device+BAR maps `addr`, if any.
    pub fn decode(&self, addr: PhysAddr) -> Option<(DeviceId, usize)> {
        for (d, dev) in self.devices.iter().enumerate() {
            for (b, bar) in dev.bars.iter().enumerate() {
                if bar.range().is_some_and(|r| r.contains(addr)) {
                    return Some((DeviceId(d), b));
                }
            }
        }
        None
    }

    /// Number of attached devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the bus has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic_config() -> ConfigSpace {
        let mut c = ConfigSpace::new(0x8086, 0x0d58, 0x0200);
        c.add_bar(Bar::new(BarKind::Mmio, 64 * 1024));
        c.add_bar(Bar::new(BarKind::DeviceMemory, 1 << 30));
        c
    }

    #[test]
    fn sizing_mask_matches_size() {
        let c = nic_config();
        assert_eq!(c.sizing_mask(0), !(64 * 1024 - 1));
        assert_eq!(c.sizing_mask(1), !((1u64 << 30) - 1));
    }

    #[test]
    fn enumeration_assigns_aligned_windows() {
        let mut bus = PcieBus::new(PhysAddr::new(0xc000_0000));
        let id = bus.attach(nic_config());
        bus.enumerate();
        let dev = bus.device(id);
        for bar in &dev.bars {
            let base = bar.base.expect("assigned").raw();
            assert_eq!(base % bar.size, 0, "unaligned BAR at {base:#x}");
        }
        let r0 = dev.bars[0].range().unwrap();
        let r1 = dev.bars[1].range().unwrap();
        assert!(!r0.overlaps(r1));
    }

    #[test]
    fn decode_finds_owner() {
        let mut bus = PcieBus::new(PhysAddr::new(0xc000_0000));
        let a = bus.attach(nic_config());
        let b = bus.attach(nic_config());
        bus.enumerate();
        let base_b = bus.device(b).bars[0].base.unwrap();
        assert_eq!(bus.decode(base_b + 8), Some((b, 0)));
        let base_a = bus.device(a).bars[1].base.unwrap();
        assert_eq!(bus.decode(base_a), Some((a, 1)));
        assert_eq!(bus.decode(PhysAddr::new(0)), None);
        assert_eq!(bus.len(), 2);
    }

    #[test]
    #[should_panic]
    fn tiny_bar_rejected() {
        let _ = Bar::new(BarKind::Mmio, 1024);
    }
}

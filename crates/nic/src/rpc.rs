//! RPC (de)serialization offload engines (paper §V-B, Figs. 10/11).
//!
//! Four designs are modelled, all driven by the *actual wire bytes and
//! object graphs* of a [`BenchWorkload`]:
//!
//! * **RpcNIC** (PCIe baseline \[49\]): the HW deserializer decodes
//!   field-by-field into a 4 KB on-chip temp buffer, flushing each
//!   completed message (or full buffer) to host memory with a one-shot
//!   DMA plus a ring-head update; responses are pre-serialized by a
//!   DSA-style memcpy engine into a DMA-safe buffer, doorbelled over
//!   MMIO, DMA-read by the NIC and encoded.
//! * **CXL-NIC deserialization**: each decoded line is pushed into the
//!   host LLC with NC-P through the coherence engine; the notification
//!   ring lives in the LLC.
//! * **CXL-NIC.cache serialization** (± the multi-stride prefetcher):
//!   the serializer pulls the object graph from host memory over
//!   CXL.cache with a small demand-fetch pipeline; the prefetcher warms
//!   the HMC along detected strides.
//! * **CXL-NIC.mem serialization**: the CPU has constructed the objects
//!   in device memory, so encoding reads local DRAM.

use crate::layout::StreamArena;
use crate::prefetch::MultiStridePrefetcher;
use protowire::{decode, encode, BenchWorkload, MessageValue};
use sim_core::Tick;
use simcxl_coherence::prelude::*;
use simcxl_mem::{PhysAddr, CACHELINE_BYTES};
use simcxl_pcie::{DmaConfig, DmaEngine};

/// Serialization design point (Fig. 18b legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerializeMode {
    /// PCIe RpcNIC baseline.
    RpcNic,
    /// CXL.cache without the prefetcher.
    CxlCacheNoPrefetch,
    /// CXL.cache with the multi-stride prefetcher.
    CxlCachePrefetch,
    /// CXL.mem (objects constructed in device memory).
    CxlMem,
}

impl SerializeMode {
    /// All four, in the paper's legend order.
    pub fn all() -> [SerializeMode; 4] {
        [
            SerializeMode::RpcNic,
            SerializeMode::CxlCacheNoPrefetch,
            SerializeMode::CxlCachePrefetch,
            SerializeMode::CxlMem,
        ]
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SerializeMode::RpcNic => "RpcNIC",
            SerializeMode::CxlCacheNoPrefetch => "CXL-NIC.cache(w/o prefetch)",
            SerializeMode::CxlCachePrefetch => "CXL-NIC.cache(w/ prefetch)",
            SerializeMode::CxlMem => "CXL-NIC.mem",
        }
    }
}

/// Timing constants of the codec datapaths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcTiming {
    /// Decoder/encoder cost per field.
    pub per_field: Tick,
    /// Decoder/encoder cost per wire byte, in picoseconds.
    pub per_byte_ps: u64,
    /// RpcNIC extra per-byte cost of staging through the temp buffer.
    pub copy_per_byte_ps: u64,
    /// Fraction of the one-shot DMA latency the single 4 KB temp buffer
    /// exposes per flush (the rest overlaps with decoding).
    pub flush_exposure: f64,
    /// Per-message ring-head DMA update cost.
    pub ring_update: Tick,
    /// DSA memcpy engine cost per gathered field.
    pub dsa_per_field: Tick,
    /// DSA memcpy engine cost per byte, in picoseconds.
    pub dsa_per_byte_ps: u64,
    /// Amortized MMIO doorbell cost per message.
    pub mmio_doorbell: Tick,
    /// Exposed share of the NIC's DMA read of the pre-serialized buffer.
    pub dma_read_exposure: f64,
    /// Temp buffer capacity.
    pub temp_buffer: u64,
    /// Demand-fetch pipeline depth of the CXL.cache serializer.
    pub fetch_queue: usize,
    /// CXL.mem local-read bandwidth in GB/s (device-attached DRAM).
    pub local_gbps: f64,
}

impl RpcTiming {
    /// Calibrated for the 1.5 GHz ASIC configuration used in Fig. 18.
    pub fn asic_1500mhz() -> Self {
        RpcTiming {
            per_field: Tick::from_ps(8_000),
            per_byte_ps: 333,
            copy_per_byte_ps: 150,
            flush_exposure: 0.12,
            ring_update: Tick::from_ns(35),
            dsa_per_field: Tick::from_ns(20),
            dsa_per_byte_ps: 300,
            mmio_doorbell: Tick::from_ns(50),
            dma_read_exposure: 0.12,
            temp_buffer: 4096,
            fetch_queue: 6,
            local_gbps: 35.0,
        }
    }
}

/// Per-workload result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcResult {
    /// Total processing time.
    pub total: Tick,
    /// Messages processed.
    pub messages: usize,
    /// Total wire bytes moved.
    pub wire_bytes: u64,
}

impl RpcResult {
    /// Mean time per message.
    pub fn per_message(&self) -> Tick {
        self.total / self.messages as u64
    }
}

/// The RPC offload model: owns the DMA engine (PCIe paths) and a
/// coherence engine with an HMC (CXL paths).
#[derive(Debug)]
pub struct RpcNicModel {
    timing: RpcTiming,
    dma: DmaEngine,
    hmc_cfg: CacheConfig,
    home_cfg: HomeConfig,
}

impl RpcNicModel {
    /// Creates a model.
    pub fn new(
        timing: RpcTiming,
        dma: DmaConfig,
        hmc_cfg: CacheConfig,
        home_cfg: HomeConfig,
    ) -> Self {
        RpcNicModel {
            timing,
            dma: DmaEngine::new(dma),
            hmc_cfg,
            home_cfg,
        }
    }

    /// A model using the ASIC-calibrated profiles throughout.
    pub fn asic() -> Self {
        Self::new(
            RpcTiming::asic_1500mhz(),
            DmaConfig::asic_1500mhz(),
            CacheConfig {
                issue_latency: Tick::from_ns(5),
                lookup_latency: Tick::from_ns(5),
                accept_gap: Tick::from_ps(700),
                link: sim_core::LinkConfig::with_gbps(Tick::from_ns(73), 90.0),
                ..CacheConfig::hmc_128k()
            },
            HomeConfig {
                lookup_latency: Tick::from_ns(50),
                refill_latency: Tick::from_ns(4),
                serve_gap: Tick::from_ps(1_300),
                mem_front_latency: Tick::from_ns(10),
                ..HomeConfig::default()
            },
        )
    }

    fn decode_cost(&self, msg: &MessageValue, wire_len: u64) -> Tick {
        self.timing.per_field * msg.total_fields()
            + Tick::from_ps(self.timing.per_byte_ps * wire_len)
    }

    /// RpcNIC deserialization (Fig. 10 steps 1–3). Functionally decodes
    /// every message and checks it round-trips.
    pub fn deserialize_rpcnic(&mut self, w: &BenchWorkload) -> RpcResult {
        self.dma.reset();
        let mut now = Tick::ZERO;
        let mut wire_total = 0u64;
        for msg in &w.messages {
            let bytes = encode(&w.schema, msg);
            let back = decode(&w.schema, &bytes).expect("wire round trip");
            debug_assert_eq!(back, *msg);
            let wire = bytes.len() as u64;
            wire_total += wire;
            // Field-by-field decode, staged through the temp buffer.
            now += self.decode_cost(msg, wire) + Tick::from_ps(self.timing.copy_per_byte_ps * wire);
            // One-shot DMA per filled buffer (at least one per message).
            let flushes = wire.div_ceil(self.timing.temp_buffer).max(1);
            for _ in 0..flushes {
                let chunk = wire.min(self.timing.temp_buffer);
                let done = self.dma.transfer(now, chunk.max(1));
                let exposure = Tick::from_ps(
                    ((done - now).as_ps() as f64 * self.timing.flush_exposure) as u64,
                );
                now += exposure;
            }
            // Ring-head update DMA write.
            now += self.timing.ring_update;
        }
        RpcResult {
            total: now,
            messages: w.messages.len(),
            wire_bytes: wire_total,
        }
    }

    /// CXL-NIC deserialization (Fig. 11 steps 1–3): decode at the same
    /// datapath rate, pushing each completed 64 B line into the LLC via
    /// NC-P through the coherence engine.
    pub fn deserialize_cxl(&mut self, w: &BenchWorkload) -> RpcResult {
        let mut eng = ProtocolEngine::builder()
            .home(self.home_cfg.clone())
            .build();
        let hmc = eng.add_cache(self.hmc_cfg.clone());
        let mut now = Tick::ZERO;
        let mut wire_total = 0u64;
        let mut dst = 0x4000_0000u64; // RX ring region in host memory
        for msg in &w.messages {
            let bytes = encode(&w.schema, msg);
            let back = decode(&w.schema, &bytes).expect("wire round trip");
            debug_assert_eq!(back, *msg);
            let wire = bytes.len() as u64;
            wire_total += wire;
            let decode_time = self.decode_cost(msg, wire);
            let lines = wire.div_ceil(CACHELINE_BYTES).max(1);
            // Fields become ready uniformly across the decode window and
            // are pushed (posted) as their lines fill.
            for k in 0..lines {
                let at = now + decode_time * k / lines;
                let at = at.max(eng.now());
                eng.issue(hmc, MemOp::NcPush { value: k }, PhysAddr::new(dst), at);
                dst += CACHELINE_BYTES;
            }
            now += decode_time;
            now = now.max(eng.now());
        }
        eng.run_to_quiescence();
        let total = now.max(eng.now());
        RpcResult {
            total,
            messages: w.messages.len(),
            wire_bytes: wire_total,
        }
    }

    /// Serialization under any [`SerializeMode`]. Functionally encodes
    /// every message (the encoded length drives byte costs).
    pub fn serialize(&mut self, w: &BenchWorkload, mode: SerializeMode) -> RpcResult {
        match mode {
            SerializeMode::RpcNic => self.serialize_rpcnic(w),
            SerializeMode::CxlMem => self.serialize_cxl_mem(w),
            SerializeMode::CxlCacheNoPrefetch => self.serialize_cxl_cache(w, false),
            SerializeMode::CxlCachePrefetch => self.serialize_cxl_cache(w, true),
        }
    }

    fn serialize_rpcnic(&mut self, w: &BenchWorkload) -> RpcResult {
        self.dma.reset();
        let mut now = Tick::ZERO;
        let mut wire_total = 0u64;
        for msg in &w.messages {
            let wire = protowire::encode::encoded_len(msg) as u64;
            wire_total += wire;
            let fields = msg.total_fields();
            // CPU-side DSA gather of noncontiguous fields into the
            // DMA-safe buffer (Fig. 10 step 4).
            now += self.timing.dsa_per_field * fields
                + Tick::from_ps(self.timing.dsa_per_byte_ps * wire);
            // MMIO doorbell (step 5).
            now += self.timing.mmio_doorbell;
            // NIC DMA read of the prepared buffer (step 6), partially
            // overlapped with encoding.
            let done = self.dma.transfer(now, wire.max(1));
            now +=
                Tick::from_ps(((done - now).as_ps() as f64 * self.timing.dma_read_exposure) as u64);
            // HW serializer encode (step 7).
            now += self.decode_cost(msg, wire);
        }
        RpcResult {
            total: now,
            messages: w.messages.len(),
            wire_bytes: wire_total,
        }
    }

    fn serialize_cxl_mem(&mut self, w: &BenchWorkload) -> RpcResult {
        let mut now = Tick::ZERO;
        let mut wire_total = 0u64;
        for msg in &w.messages {
            let wire = protowire::encode::encoded_len(msg) as u64;
            wire_total += wire;
            // Objects already sit in device memory: encode reads local
            // DRAM at stream bandwidth.
            let local_read =
                Tick::from_ps((wire as f64 / (self.timing.local_gbps * 1e9) * 1e12) as u64);
            now += self.decode_cost(msg, wire) + local_read;
        }
        RpcResult {
            total: now,
            messages: w.messages.len(),
            wire_bytes: wire_total,
        }
    }

    fn serialize_cxl_cache(&mut self, w: &BenchWorkload, prefetch: bool) -> RpcResult {
        let mut eng = ProtocolEngine::builder()
            .home(self.home_cfg.clone())
            .build();
        let hmc = eng.add_cache(self.hmc_cfg.clone());
        let mut pf = MultiStridePrefetcher::rpc_default();
        let mut now = Tick::ZERO;
        let mut wire_total = 0u64;
        // Paces demand fetches; `now` is the encode pipeline, which
        // overlaps with fetching subsequent lines.
        let mut issue_clock = Tick::ZERO;
        // Completions drained from the engine, keyed by request
        // (prefetch completions are dropped on the floor).
        let mut completed: std::collections::HashMap<ReqId, Tick> =
            std::collections::HashMap::new();
        let mut arena = StreamArena::new(PhysAddr::new(0x1_0000_0000), 1);
        for msg in &w.messages {
            let wire = protowire::encode::encoded_len(msg) as u64;
            wire_total += wire;
            let stream = arena.stream(msg);
            // Full encode work for the message, spread across its lines
            // so it overlaps with the line fetches.
            let per_line_encode = self.decode_cost(msg, wire) / stream.len() as u64;
            // The CPU constructed these objects moments ago: they are
            // resident in the host LLC, not just in DRAM.
            for line in &stream {
                eng.preload_llc(*line);
            }
            let q = self.timing.fetch_queue;
            let mut pending: std::collections::VecDeque<(ReqId, PhysAddr)> =
                std::collections::VecDeque::new();
            let mut next = 0usize;
            let mut fetched = 0usize;
            while fetched < stream.len() {
                // Keep the demand pipeline full.
                while pending.len() < q && next < stream.len() {
                    let line = stream[next];
                    issue_clock = issue_clock.max(eng.now());
                    if prefetch {
                        for target in pf.access(line) {
                            eng.issue(hmc, MemOp::Prefetch, target, issue_clock);
                        }
                    }
                    let req = eng.issue(hmc, MemOp::Load, line, issue_clock);
                    pending.push_back((req, line));
                    next += 1;
                }
                // Wait for the oldest demand fetch.
                let (want, _line) = pending.pop_front().expect("pipeline nonempty");
                let done = loop {
                    if let Some(d) = completed.remove(&want) {
                        break d;
                    }
                    match eng.run_next() {
                        Some(comps) => {
                            for c in comps {
                                if matches!(c.op, MemOp::Load) {
                                    completed.insert(c.req, c.done);
                                }
                            }
                        }
                        None => break eng.now(),
                    }
                };
                issue_clock = issue_clock.max(done);
                // Encode overlaps with the in-flight fetches.
                now = now.max(done) + per_line_encode;
                fetched += 1;
            }
        }
        RpcResult {
            total: now,
            messages: w.messages.len(),
            wire_bytes: wire_total,
        }
    }
}

impl RpcNicModel {
    /// Debug entry point exposing the CXL.cache serializer directly.
    #[doc(hidden)]
    pub fn serialize_cxl_cache_debug(&mut self, w: &BenchWorkload, prefetch: bool) -> RpcResult {
        self.serialize_cxl_cache(w, prefetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::{genbench, BenchId};

    fn small(id: BenchId) -> BenchWorkload {
        let mut w = genbench::generate(id, 7);
        w.messages.truncate(40);
        w
    }

    #[test]
    fn cxl_deserialization_beats_rpcnic_everywhere() {
        for id in [BenchId::Bench1, BenchId::Bench2, BenchId::Bench5] {
            let w = small(id);
            let mut m = RpcNicModel::asic();
            let rpc = m.deserialize_rpcnic(&w);
            let cxl = m.deserialize_cxl(&w);
            let speedup = rpc.total.as_ns_f64() / cxl.total.as_ns_f64();
            assert!(
                speedup > 1.1 && speedup < 3.0,
                "{id:?} deser speedup {speedup:.2} out of band"
            );
        }
    }

    #[test]
    fn small_field_bench_gains_most_in_deserialization() {
        let mut m = RpcNicModel::asic();
        let w1 = small(BenchId::Bench1);
        let w5 = small(BenchId::Bench5);
        let s1 =
            m.deserialize_rpcnic(&w1).total.as_ns_f64() / m.deserialize_cxl(&w1).total.as_ns_f64();
        let s5 =
            m.deserialize_rpcnic(&w5).total.as_ns_f64() / m.deserialize_cxl(&w5).total.as_ns_f64();
        assert!(s1 > s5, "Bench1 {s1:.2} should beat Bench5 {s5:.2}");
    }

    #[test]
    fn all_cxl_serialization_modes_beat_rpcnic() {
        let w = small(BenchId::Bench3);
        let mut m = RpcNicModel::asic();
        let base = m.serialize(&w, SerializeMode::RpcNic).total;
        for mode in [
            SerializeMode::CxlCacheNoPrefetch,
            SerializeMode::CxlCachePrefetch,
            SerializeMode::CxlMem,
        ] {
            let t = m.serialize(&w, mode).total;
            assert!(t < base, "{mode:?}: {t} !< {base}");
        }
    }

    #[test]
    fn cxl_mem_is_fastest_serialization() {
        let w = small(BenchId::Bench1);
        let mut m = RpcNicModel::asic();
        let mem = m.serialize(&w, SerializeMode::CxlMem).total;
        for mode in [
            SerializeMode::RpcNic,
            SerializeMode::CxlCacheNoPrefetch,
            SerializeMode::CxlCachePrefetch,
        ] {
            assert!(mem < m.serialize(&w, mode).total, "{mode:?} beat CXL.mem");
        }
    }

    #[test]
    fn prefetcher_helps_flat_more_than_nested() {
        let mut m = RpcNicModel::asic();
        let flat = small(BenchId::Bench1);
        let nested = small(BenchId::Bench2);
        let gain = |m: &mut RpcNicModel, w: &BenchWorkload| {
            let no = m
                .serialize(w, SerializeMode::CxlCacheNoPrefetch)
                .total
                .as_ns_f64();
            let yes = m
                .serialize(w, SerializeMode::CxlCachePrefetch)
                .total
                .as_ns_f64();
            no / yes - 1.0
        };
        let g_flat = gain(&mut m, &flat);
        let g_nested = gain(&mut m, &nested);
        assert!(
            g_flat > g_nested,
            "prefetch gain flat {g_flat:.3} !> nested {g_nested:.3}"
        );
        assert!(g_nested >= 0.0, "prefetch must not hurt: {g_nested:.3}");
    }

    #[test]
    fn results_count_messages_and_bytes() {
        let w = small(BenchId::Bench0);
        let mut m = RpcNicModel::asic();
        let r = m.deserialize_rpcnic(&w);
        assert_eq!(r.messages, w.messages.len());
        assert_eq!(r.wire_bytes, w.total_wire_bytes());
        assert!(r.per_message() > Tick::ZERO);
    }
}

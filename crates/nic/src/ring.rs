//! Descriptor rings (RX/TX queues and host/NIC notification rings).

/// A bounded single-producer single-consumer descriptor ring with
/// head/tail indices, as used by the RpcNIC host ring and the RAO RX
/// queue.
#[derive(Debug, Clone)]
pub struct DescriptorRing<T> {
    slots: Vec<Option<T>>,
    head: u64,
    tail: u64,
}

impl<T> DescriptorRing<T> {
    /// Creates a ring with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a nonzero power of two.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity.is_power_of_two(),
            "ring capacity must be a nonzero power of two"
        );
        DescriptorRing {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            tail: 0,
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Producer side: pushes a descriptor and advances the head.
    /// Returns `false` (without pushing) when full.
    pub fn push(&mut self, desc: T) -> bool {
        if self.is_full() {
            return false;
        }
        let idx = (self.head as usize) & (self.capacity() - 1);
        self.slots[idx] = Some(desc);
        self.head += 1;
        true
    }

    /// Consumer side: pops the oldest descriptor and advances the tail.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let idx = (self.tail as usize) & (self.capacity() - 1);
        self.tail += 1;
        self.slots[idx].take()
    }

    /// Producer's head index (the value a doorbell write would carry).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Consumer's tail index.
    pub fn tail(&self) -> u64 {
        self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = DescriptorRing::new(4);
        for i in 0..4 {
            assert!(r.push(i));
        }
        assert!(r.is_full());
        assert!(!r.push(99));
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn wraparound() {
        let mut r = DescriptorRing::new(2);
        for round in 0..100 {
            assert!(r.push(round));
            assert_eq!(r.pop(), Some(round));
        }
        assert_eq!(r.head(), 100);
        assert_eq!(r.tail(), 100);
    }

    #[test]
    fn len_tracks_occupancy() {
        let mut r = DescriptorRing::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.len(), 2);
        r.pop();
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = DescriptorRing::<u8>::new(3);
    }
}

//! NIC models: the paper's two killer-app offload designs on both
//! interconnects (§V).
//!
//! * [`rao`] — remote atomic operation offload: the PCIe-NIC executes
//!   each RAO as an ordered DMA read-modify-write pair (RAW-hazard
//!   guarded), while the CXL-NIC services RAOs in its HMC through the
//!   coherence engine with line locking (Figs. 8/9, evaluated in
//!   Fig. 17).
//! * [`rpc`] — RPC (de)serialization offload: the RpcNIC \[49\] baseline
//!   (field-by-field decode into a 4 KB temp buffer, one-shot DMA, ring
//!   doorbells, DSA-style pre-serialization) versus the CXL-NIC variants
//!   (NC-P field pushes; CXL.cache serialization with an optional
//!   multi-stride prefetcher; CXL.mem construction in device memory)
//!   (Figs. 10/11, evaluated in Fig. 18).
//! * [`prefetch`] — the multi-stride RPC prefetcher (§V-B2).
//! * [`layout`] — in-memory object-graph layout of protobuf messages,
//!   producing the line-granular access streams serialization reads.
//! * [`ring`] — descriptor rings shared by both designs.

pub mod layout;
pub mod prefetch;
pub mod rao;
pub mod ring;
pub mod rpc;

pub use prefetch::MultiStridePrefetcher;
pub use rao::{CxlRaoNic, PcieRaoNic, RaoResult};
pub use ring::DescriptorRing;
pub use rpc::{RpcNicModel, RpcTiming, SerializeMode};

//! The multi-stride RPC prefetcher (paper §V-B2).
//!
//! "The RPC prefetcher is a multi-stride prefetcher, which records
//! cache-miss addresses to identify data streams with various stride
//! patterns and issues prefetches accordingly, achieving a balance
//! between performance and design complexity."

use simcxl_mem::{PhysAddr, CACHELINE_BYTES};

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// Statistics of a [`MultiStridePrefetcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Accesses observed.
    pub accesses: u64,
    /// Prefetches issued.
    pub issued: u64,
    /// Accesses that had been prefetched (useful prefetches).
    pub hits: u64,
}

/// A table of stride streams with confidence counters.
///
/// Call [`access`](Self::access) with each demand line address; the
/// prefetcher returns the lines to prefetch (prefetch degree 2 once a
/// stream is confident). Track usefulness with
/// [`was_prefetched`](Self::was_prefetched).
#[derive(Debug)]
pub struct MultiStridePrefetcher {
    streams: Vec<Option<Stream>>,
    issued: std::collections::HashSet<u64>,
    stats: PrefetchStats,
    tick: u64,
    degree: usize,
    last_line: Option<u64>,
}

impl MultiStridePrefetcher {
    /// Creates a prefetcher with `streams` stream slots and the given
    /// prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `degree` is zero.
    pub fn new(streams: usize, degree: usize) -> Self {
        assert!(streams > 0 && degree > 0);
        MultiStridePrefetcher {
            streams: vec![None; streams],
            issued: std::collections::HashSet::new(),
            stats: PrefetchStats::default(),
            tick: 0,
            degree,
            last_line: None,
        }
    }

    /// Default configuration: 8 streams, degree 2.
    pub fn rpc_default() -> Self {
        Self::new(8, 2)
    }

    /// Observes a demand access to the line containing `addr`; returns
    /// line addresses to prefetch.
    pub fn access(&mut self, addr: PhysAddr) -> Vec<PhysAddr> {
        let line = addr.line().raw();
        self.tick += 1;
        self.stats.accesses += 1;
        if self.issued.remove(&line) {
            self.stats.hits += 1;
        }
        // Back-to-back accesses to the same line train nothing (the
        // table records distinct miss addresses).
        if self.last_line == Some(line) {
            return Vec::new();
        }
        self.last_line = Some(line);

        // Find the stream whose next expected address matches, or the
        // closest stream by last address.
        let mut matched: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if let Some(s) = s {
                let delta = line as i64 - s.last as i64;
                if delta == s.stride && s.stride != 0 {
                    matched = Some(i);
                    break;
                }
                // A plausible continuation within 8 lines trains a new stride.
                if matched.is_none() && delta.unsigned_abs() <= 8 * CACHELINE_BYTES {
                    matched = Some(i);
                }
            }
        }
        let mut out = Vec::new();
        match matched {
            Some(i) => {
                let s = self.streams[i].as_mut().expect("matched");
                let delta = line as i64 - s.last as i64;
                if delta == s.stride && s.stride != 0 {
                    s.confidence = s.confidence.saturating_add(1);
                } else {
                    s.stride = delta;
                    s.confidence = if delta == 0 { 0 } else { 1 };
                }
                s.last = line;
                s.lru = self.tick;
                if s.confidence >= 2 {
                    let stride = s.stride;
                    for k in 1..=self.degree as i64 {
                        let target = (line as i64 + stride * k) as u64;
                        if self.issued.insert(target) {
                            self.stats.issued += 1;
                            out.push(PhysAddr::new(target));
                        }
                    }
                }
            }
            None => {
                // Allocate (victimize LRU) a new stream.
                let slot = self
                    .streams
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_else(|| {
                        self.streams
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.as_ref().map(|s| s.lru).unwrap_or(0))
                            .map(|(i, _)| i)
                            .expect("nonempty table")
                    });
                self.streams[slot] = Some(Stream {
                    last: line,
                    stride: 0,
                    confidence: 0,
                    lru: self.tick,
                });
            }
        }
        out
    }

    /// Whether `addr`'s line was covered by an issued (still-unused)
    /// prefetch. Unlike [`access`](Self::access), this does not consume the entry.
    pub fn was_prefetched(&self, addr: PhysAddr) -> bool {
        self.issued.contains(&addr.line().raw())
    }

    /// Counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Useful-prefetch fraction of all accesses.
    pub fn coverage(&self) -> f64 {
        if self.stats.accesses == 0 {
            return 0.0;
        }
        self.stats.hits as f64 / self.stats.accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_gets_covered() {
        let mut p = MultiStridePrefetcher::rpc_default();
        for i in 0..64u64 {
            p.access(PhysAddr::new(i * 64));
        }
        let cov = p.coverage();
        assert!(cov > 0.8, "sequential coverage {cov}");
    }

    #[test]
    fn large_stride_stream_gets_covered() {
        let mut p = MultiStridePrefetcher::rpc_default();
        for i in 0..64u64 {
            p.access(PhysAddr::new(i * 256));
        }
        assert!(
            p.coverage() > 0.7,
            "stride-4-line coverage {}",
            p.coverage()
        );
    }

    #[test]
    fn random_stream_is_not_covered() {
        let mut p = MultiStridePrefetcher::rpc_default();
        let mut x = 12345u64;
        for _ in 0..256 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.access(PhysAddr::new((x >> 20) & !63));
        }
        assert!(p.coverage() < 0.1, "random coverage {}", p.coverage());
    }

    #[test]
    fn interleaved_streams_both_tracked() {
        let mut p = MultiStridePrefetcher::new(4, 2);
        for i in 0..64u64 {
            p.access(PhysAddr::new(0x10_0000 + i * 64));
            p.access(PhysAddr::new(0x80_0000 + i * 128));
        }
        assert!(p.coverage() > 0.6, "two-stream coverage {}", p.coverage());
    }

    #[test]
    fn was_prefetched_reflects_outstanding() {
        let mut p = MultiStridePrefetcher::rpc_default();
        for i in 0..8u64 {
            p.access(PhysAddr::new(i * 64));
        }
        assert!(p.was_prefetched(PhysAddr::new(8 * 64)));
        // Consuming it via access counts a hit and clears it.
        p.access(PhysAddr::new(8 * 64));
        assert!(p.stats().hits > 0);
    }
}

//! Remote atomic operation (RAO) offload engines (paper §V-A, Fig. 8/9).

use sim_core::Tick;
use simcxl_coherence::prelude::*;
use simcxl_pcie::{DmaConfig, DmaEngine};
use simcxl_workloads::circustent::RaoOp;

/// Outcome of running an RAO stream through a NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaoResult {
    /// Completion time of the last operation.
    pub total: Tick,
    /// Operations executed.
    pub ops: usize,
}

impl RaoResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.total.as_secs_f64() / 1e6
    }
}

/// The PCIe-NIC RAO design (paper §V-A1): each RAO executes as an
/// indivisible DMA read + modify + DMA write, and — because PCIe's
/// relaxed ordering permits a later read to pass an earlier write — the
/// write must be acknowledged before the next RAO to the same engine
/// proceeds (Fig. 8a).
#[derive(Debug)]
pub struct PcieRaoNic {
    dma: DmaEngine,
    rx_overhead: Tick,
}

impl PcieRaoNic {
    /// Creates the NIC over the given DMA timing.
    pub fn new(dma: DmaConfig) -> Self {
        PcieRaoNic {
            dma: DmaEngine::new(dma),
            rx_overhead: Tick::from_ns(20),
        }
    }

    /// Executes `ops` back-to-back (an always-backlogged RX queue, the
    /// saturation regime CircusTent measures).
    pub fn run(&mut self, ops: &[RaoOp]) -> RaoResult {
        assert!(!ops.is_empty(), "empty RAO stream");
        self.dma.reset();
        let mut now = Tick::ZERO;
        for _op in ops {
            now = self.dma.ordered_rmw(now + self.rx_overhead, 64);
        }
        RaoResult {
            total: now,
            ops: ops.len(),
        }
    }
}

/// The CXL-NIC RAO design (paper §V-A2, Fig. 9): RAO PEs parse requests
/// from the RX buffer and execute read-modify-write against the HMC via
/// the DCOH; hits are serviced in-cache with the line locked, misses
/// fetch the line coherently from the host.
#[derive(Debug)]
pub struct CxlRaoNic {
    engine: ProtocolEngine,
    hmc: AgentId,
    rx_overhead: Tick,
    /// Outstanding-op window (number of RAO PEs).
    pes: usize,
}

impl CxlRaoNic {
    /// Creates the NIC with an HMC of the given configuration and the
    /// default host configuration.
    pub fn new(hmc_cfg: CacheConfig, home_cfg: HomeConfig, pes: usize) -> Self {
        assert!(pes > 0, "need at least one PE");
        let mut engine = ProtocolEngine::builder().home(home_cfg).build();
        let hmc = engine.add_cache(hmc_cfg);
        CxlRaoNic {
            engine,
            hmc,
            rx_overhead: Tick::from_ns(20),
            pes,
        }
    }

    /// Read access to the protocol engine (statistics, verification).
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// The HMC's agent id within [`engine`](Self::engine).
    pub fn hmc(&self) -> AgentId {
        self.hmc
    }

    /// Mutable access (seeding functional memory in tests).
    pub fn engine_mut(&mut self) -> &mut ProtocolEngine {
        &mut self.engine
    }

    /// Executes `ops` with up to `pes` outstanding operations.
    ///
    /// CircusTent's single-stream semantics order all ops; PEs only
    /// overlap *independent* lines, so a window of `pes` requests is in
    /// flight at once and conflicting lines serialize in the HMC/home.
    pub fn run(&mut self, ops: &[RaoOp]) -> RaoResult {
        assert!(!ops.is_empty(), "empty RAO stream");
        let n = ops.len();
        let mut issued = 0usize;
        let mut done = 0usize;
        let mut now = Tick::ZERO;
        while done < n {
            while issued - done < self.pes && issued < n {
                let op = ops[issued];
                now = now.max(self.engine.now()) + self.rx_overhead;
                self.engine.issue(
                    self.hmc,
                    MemOp::Rmw {
                        kind: op.kind,
                        operand: op.operand,
                        operand2: 0,
                    },
                    op.addr,
                    now,
                );
                issued += 1;
            }
            match self.engine.run_next() {
                Some(comps) => {
                    done += comps.len();
                    now = now.max(self.engine.now());
                }
                None => break,
            }
        }
        let comps = self.engine.run_to_quiescence();
        done += comps.len();
        assert_eq!(done, n, "lost completions");
        RaoResult {
            total: self.engine.now(),
            ops: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcxl_workloads::circustent::{self, CtConfig, CtPattern};

    fn cxl_nic() -> CxlRaoNic {
        CxlRaoNic::new(CacheConfig::hmc_128k(), HomeConfig::default(), 1)
    }

    fn ct(pattern: CtPattern, ops: usize) -> Vec<RaoOp> {
        circustent::generate(
            pattern,
            CtConfig {
                ops,
                ..CtConfig::default()
            },
        )
    }

    #[test]
    fn pcie_rao_throughput_is_dma_bound() {
        let mut nic = PcieRaoNic::new(DmaConfig::fpga_400mhz());
        let r = nic.run(&ct(CtPattern::Central, 64));
        // Each RMW costs two ordered DMA transfers: several µs per op.
        let per_op = r.total / 64;
        assert!(per_op > Tick::from_us(3), "per-op {per_op}");
        assert!(per_op < Tick::from_us(8), "per-op {per_op}");
    }

    #[test]
    fn cxl_central_hits_in_hmc() {
        let mut nic = cxl_nic();
        let r = nic.run(&ct(CtPattern::Central, 256));
        let stats = nic.engine().cache_stats(nic.hmc());
        assert!(stats.hits >= 255, "central should hit after the first op");
        let per_op = r.total / 256;
        assert!(per_op < Tick::from_ns(200), "per-op {per_op}");
    }

    #[test]
    fn cxl_functional_sum_is_exact() {
        let mut nic = cxl_nic();
        let ops = ct(CtPattern::Central, 500);
        nic.run(&ops);
        let total = nic
            .engine_mut()
            .func_mem()
            .read_u64(CtConfig::default().base);
        assert_eq!(total, 500, "all FAAs must land exactly once");
    }

    #[test]
    fn cxl_beats_pcie_on_every_pattern() {
        for pattern in CtPattern::all() {
            let ops = ct(pattern, 256);
            let mut pcie = PcieRaoNic::new(DmaConfig::fpga_400mhz());
            let p = pcie.run(&ops);
            let mut cxl = cxl_nic();
            let c = cxl.run(&ops);
            let speedup = c.mops() / p.mops();
            assert!(speedup > 3.0, "{pattern:?} speedup only {speedup:.1}x");
        }
    }

    #[test]
    fn speedup_ordering_matches_fig17() {
        let mut speedups = std::collections::HashMap::new();
        for pattern in CtPattern::all() {
            let ops = ct(pattern, 512);
            let mut pcie = PcieRaoNic::new(DmaConfig::fpga_400mhz());
            let p = pcie.run(&ops);
            let mut cxl = cxl_nic();
            let c = cxl.run(&ops);
            speedups.insert(pattern, c.mops() / p.mops());
        }
        let s = |p| speedups[&p];
        assert!(s(CtPattern::Central) > s(CtPattern::Stride1));
        assert!(s(CtPattern::Stride1) > s(CtPattern::Scatter));
        assert!(s(CtPattern::Scatter) > s(CtPattern::Rand));
        assert!(s(CtPattern::Gather) > s(CtPattern::Rand));
        assert!(s(CtPattern::Sg) > s(CtPattern::Rand));
    }

    #[test]
    fn more_pes_do_not_hurt_central() {
        let ops = ct(CtPattern::Central, 256);
        let mut one = cxl_nic();
        let r1 = one.run(&ops);
        let mut four = CxlRaoNic::new(CacheConfig::hmc_128k(), HomeConfig::default(), 4);
        let r4 = four.run(&ops);
        // All ops conflict on one line, so extra PEs cannot slow it by
        // much (lock serialization), and the sum must stay exact.
        assert!(r4.total < r1.total * 2);
        assert_eq!(
            four.engine_mut()
                .func_mem()
                .read_u64(CtConfig::default().base),
            256
        );
    }
}

//! In-memory object-graph layout of protobuf messages.
//!
//! Serialization offload reads the host-resident message objects
//! field-by-field. The access pattern depends on how the object graph is
//! laid out: a flat message's fields sit contiguously, while nested
//! messages are separate heap allocations reached by pointer chasing —
//! "analogous to pointer chasing, incurring significant cumulative
//! overhead during (de)serialization" (paper §V-B). This module assigns
//! heap addresses to a [`MessageValue`] tree and produces the
//! line-granular read stream the serializer issues.

use protowire::{MessageValue, Value};
use simcxl_mem::{PhysAddr, CACHELINE_BYTES};

/// A simple heap model: bump allocation with pseudo-random placement
/// noise to mimic fragmentation (child allocations rarely end up
/// adjacent to their parent in long-running services).
#[derive(Debug)]
struct Heap {
    base: u64,
    cursor: u64,
    scatter: u64,
}

/// Root messages are slab-allocated in slots of this alignment, so
/// successive responses sit at a regular stride without sharing lines.
const SLOT_ALIGN: u64 = 2 * CACHELINE_BYTES;
/// Nested objects land in a far heap window (fragmented old heap).
const SCATTER_WINDOW: u64 = 256 << 20;

impl Heap {
    /// An allocation adjacent to the previous one (fields and string
    /// payloads created together stay together).
    fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = (self.base + self.cursor + 7) & !7;
        self.cursor = (addr - self.base) + bytes;
        addr
    }

    /// Aligns the cursor up to the next slab slot (new root message).
    fn align_slot(&mut self) {
        self.cursor = self.cursor.div_ceil(SLOT_ALIGN) * SLOT_ALIGN;
    }

    /// A hash-derived cursor for a separately heap-allocated child
    /// object: pointer chasing into a fragmented far window.
    fn scattered_cursor(&mut self) -> u64 {
        self.scatter = self
            .scatter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (SCATTER_WINDOW + ((self.scatter >> 24) % SCATTER_WINDOW)) & !(CACHELINE_BYTES - 1)
    }
}

/// The serializer's read stream over one message: each entry is one
/// 64 B line fetch, in traversal order.
pub fn serialize_read_stream(msg: &MessageValue, base: PhysAddr, seed: u64) -> Vec<PhysAddr> {
    StreamArena::new(base, seed).stream(msg)
}

/// A persistent heap arena: successive messages allocate consecutively
/// (as in a per-connection response buffer), so stride streams continue
/// across message boundaries while nested objects still scatter.
#[derive(Debug)]
pub struct StreamArena {
    heap: Heap,
}

impl StreamArena {
    /// Creates an arena at `base` with fragmentation seed `seed`.
    pub fn new(base: PhysAddr, seed: u64) -> Self {
        StreamArena {
            heap: Heap {
                base: base.raw(),
                cursor: 0,
                scatter: seed | 1,
            },
        }
    }

    /// Lays out one message and returns its line-granular read stream.
    pub fn stream(&mut self, msg: &MessageValue) -> Vec<PhysAddr> {
        self.heap.align_slot();
        let mut lines = Vec::new();
        place(msg, &mut self.heap, &mut lines);
        lines
    }
}

fn push_span(lines: &mut Vec<PhysAddr>, start: u64, bytes: u64) {
    let first = start & !(CACHELINE_BYTES - 1);
    let last = (start + bytes.max(1) - 1) & !(CACHELINE_BYTES - 1);
    let mut line = first;
    loop {
        lines.push(PhysAddr::new(line));
        if line == last {
            break;
        }
        line += CACHELINE_BYTES;
    }
}

fn place(msg: &MessageValue, heap: &mut Heap, lines: &mut Vec<PhysAddr>) {
    // The node's scalar block: 8 B per field slot (scalars inline;
    // strings and children as pointers).
    let slots = msg.fields.len() as u64;
    let node = heap.alloc(slots * 8);
    push_span(lines, node, slots * 8);
    for (_, v) in &msg.fields {
        match v {
            Value::Str(s) => {
                let a = heap.alloc(s.len() as u64);
                push_span(lines, a, s.len() as u64);
            }
            Value::Bytes(b) => {
                let a = heap.alloc(b.len() as u64);
                push_span(lines, a, b.len() as u64);
            }
            Value::Message(m) => {
                // Pointer chase: the child is its own heap allocation in
                // the fragmented window; its own fields stay contiguous.
                let saved = heap.cursor;
                heap.cursor = heap.scattered_cursor();
                place(m, heap, lines);
                heap.cursor = saved;
            }
            _ => {}
        }
    }
}

/// Fraction of stream entries that repeat or continue the previous
/// line (+64 B): a cheap sequentiality metric.
pub fn sequentiality(stream: &[PhysAddr]) -> f64 {
    if stream.len() < 2 {
        return 1.0;
    }
    let seq = stream
        .windows(2)
        .filter(|w| {
            let d = w[1].raw() as i64 - w[0].raw() as i64;
            (0..=CACHELINE_BYTES as i64).contains(&d)
        })
        .count();
    seq as f64 / (stream.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::{genbench, BenchId};

    fn stream_for(id: BenchId) -> (Vec<PhysAddr>, usize) {
        let w = genbench::generate(id, 3);
        let mut all = Vec::new();
        let mut msgs = 0;
        for (i, m) in w.messages.iter().take(50).enumerate() {
            all.extend(serialize_read_stream(
                m,
                PhysAddr::new((0x1000_0000 + (i as u64)) << 24),
                i as u64,
            ));
            msgs += 1;
        }
        (all, msgs)
    }

    #[test]
    fn stream_is_line_aligned_and_nonempty() {
        let (s, _) = stream_for(BenchId::Bench0);
        assert!(!s.is_empty());
        assert!(s.iter().all(|a| a.is_line_aligned()));
    }

    #[test]
    fn flat_benches_are_more_sequential_than_nested() {
        let (b1, _) = stream_for(BenchId::Bench1);
        let (b2, _) = stream_for(BenchId::Bench2);
        let s1 = sequentiality(&b1);
        let s2 = sequentiality(&b2);
        assert!(
            s1 > s2,
            "flat Bench1 ({s1:.2}) should be more sequential than nested Bench2 ({s2:.2})"
        );
    }

    #[test]
    fn large_strings_dominate_bench5_lines() {
        let w = genbench::generate(BenchId::Bench5, 3);
        let m = &w.messages[0];
        let s = serialize_read_stream(m, PhysAddr::new(0x4000_0000), 1);
        // A multi-KB message covers many lines.
        assert!(s.len() as u64 > m.payload_bytes() / CACHELINE_BYTES / 2);
    }

    #[test]
    fn layout_is_deterministic() {
        let w = genbench::generate(BenchId::Bench3, 3);
        let a = serialize_read_stream(&w.messages[0], PhysAddr::new(0x100000), 9);
        let b = serialize_read_stream(&w.messages[0], PhysAddr::new(0x100000), 9);
        assert_eq!(a, b);
    }
}

//! Parallel per-home event-loop sharding: same stream, more threads.
//!
//! Builds a four-home line-interleaved engine twice — once sequential,
//! once with `.parallel(4)` — drives both with an identical batch of
//! mixed traffic (loads, stores, contended atomics, NC-P pushes), and
//! shows that the two completion streams are *byte-identical*: same
//! completions, same order, same timestamps, same values. That is the
//! executor's contract (see `simcxl_coherence::parallel`): threads
//! change wall-clock time only, never simulation results.
//!
//! Run with: `cargo run --release --example parallel_shards`

use sim_core::{SimRng, Tick};
use simcxl_coherence::prelude::*;
use simcxl_coherence::ParallelConfig;
use simcxl_mem::PhysAddr;

const HOMES: usize = 4;
const CACHES: usize = 8;
const REQUESTS: usize = 40_000;

fn build(parallel: bool) -> (ProtocolEngine, Vec<AgentId>) {
    let mut b = ProtocolEngine::builder().topology(Topology::line_interleaved(HOMES));
    if parallel {
        // `always`: no engagement threshold, so even this modest batch
        // runs on the worker shards.
        b = b.parallel_config(ParallelConfig::always(HOMES));
    }
    let mut eng = b.build();
    let agents = (0..CACHES)
        .map(|i| {
            eng.add_cache(if i % 2 == 0 {
                CacheConfig::cpu_l1()
            } else {
                CacheConfig::hmc_128k()
            })
        })
        .collect();
    (eng, agents)
}

/// Issues the whole batch up front (timestamps spread 1 ns apart), so a
/// single `run_to_quiescence` drains it — the driver shape that lets
/// the parallel executor amortize its barriers best.
fn drive(eng: &mut ProtocolEngine, agents: &[AgentId]) -> Vec<Completion> {
    let mut rng = SimRng::new(0xC0FFEE);
    for i in 0..REQUESTS {
        let agent = agents[rng.below(agents.len() as u64) as usize];
        let line = if rng.below(5) == 0 {
            rng.below(8) // hot, contended
        } else {
            8 + rng.below(4096)
        };
        let op = match rng.below(10) {
            0..=4 => MemOp::Load,
            5..=7 => MemOp::Store {
                value: rng.next_u64(),
            },
            8 => MemOp::Rmw {
                kind: AtomicKind::FetchAdd,
                operand: 1,
                operand2: 0,
            },
            _ => MemOp::NcPush {
                value: rng.next_u64(),
            },
        };
        let at = Tick::from_ns(i as u64) + Tick::from_ps(rng.below(999));
        eng.issue(agent, op, PhysAddr::new(line * 64), at);
    }
    eng.run_to_quiescence()
}

fn checksum(stream: &[Completion]) -> u64 {
    stream.iter().fold(0u64, |acc, c| {
        acc.rotate_left(7)
            .wrapping_add(c.value ^ c.done.as_ps() ^ c.addr.raw())
    })
}

fn main() {
    let (mut seq, agents) = build(false);
    let t0 = std::time::Instant::now();
    let seq_stream = drive(&mut seq, &agents);
    let seq_wall = t0.elapsed();

    let (mut par, agents) = build(true);
    let t0 = std::time::Instant::now();
    let par_stream = drive(&mut par, &agents);
    let par_wall = t0.elapsed();

    assert_eq!(seq_stream, par_stream, "streams diverged");
    assert!(par.parallel_runs() > 0, "parallel path never engaged");
    par.verify_invariants();

    println!("parallel_shards: {HOMES} homes, {CACHES} caches, {REQUESTS} requests");
    println!(
        "  sequential: {} events in {:>8.1?}  checksum {:#018x}",
        seq.events_dispatched(),
        seq_wall,
        checksum(&seq_stream)
    );
    println!(
        "  parallel  : {} events in {:>8.1?}  checksum {:#018x}  ({} parallel runs)",
        par.events_dispatched(),
        par_wall,
        checksum(&par_stream),
        par.parallel_runs()
    );
    println!(
        "  streams are byte-identical ({} completions)",
        seq_stream.len()
    );
    // The persistent pool's always-on counters: how many macro-windows
    // ran, how many were adaptively widened past one lookahead, and how
    // much cross-shard traffic the merges routed. CI logs this line as
    // the executor-behaviour record of the run.
    println!(
        "  pool      : {} ({} worker threads)",
        par.pool_counters(),
        par.pool_thread_ids().map_or(0, |ids| ids.len())
    );
    for h in 0..HOMES {
        let s = par.home_stats_for(HomeId(h));
        println!(
            "  {}: {} requests, {} llc hits, {} snoops",
            HomeId(h),
            s.requests,
            s.llc_hits,
            s.snoops_sent
        );
    }
}

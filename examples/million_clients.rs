//! Million-client scenario walkthrough: a logical client population
//! ramping onto a 4-way interleaved directory, holding steady, then
//! taking a thundering-herd burst — all multiplexed over 16 real cache
//! agents by the scenario engine.
//!
//! Run with: `cargo run --release --example million_clients -- 1000000`
//! (the population defaults to 50 000 so the debug build stays quick).

use cohet::prelude::*;
use cohet::TopologySpec;
use simcxl_workloads::scenario;

fn main() {
    let clients: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("client count"))
        .unwrap_or(50_000);

    // The scenario is declarative data: population, arrival discipline,
    // per-client session machine, and phased traffic shapes. Phase
    // windows scale with the population so arrival density stays at the
    // designed level.
    let spec = scenario::ramp_then_burst(clients, 42);
    println!(
        "scenario {:?}: {} clients over {} agents, {} phases, {:.0} us of simulated traffic",
        spec.name,
        spec.clients,
        spec.agents,
        spec.phases.len(),
        spec.total_duration().as_us_f64(),
    );

    // The system under test: same builder as every other Cohet
    // experiment, with the directory interleaved across four homes.
    let sys = CohetSystem::builder()
        .topology(TopologySpec::Interleaved {
            homes: 4,
            stride: 4096,
        })
        .build();

    let start = std::time::Instant::now();
    let out = sys.run_scenario(&spec);
    let wall = start.elapsed().as_secs_f64();

    println!(
        "completed {} sessions ({} capped), {} accesses, {} engine events in {:.2}s wall ({:.2} M events/s)",
        out.completed,
        out.capped,
        out.accesses,
        out.events,
        wall,
        out.events as f64 / wall / 1e6,
    );
    println!("peak concurrent sessions: {}", out.peak_live);
    println!(
        "completion checksum: {:#018x} (rerun reproduces it exactly)",
        out.checksum
    );
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>12}",
        "phase", "sessions", "accesses", "p50 ns", "p95 ns", "p99 ns", "acc/us"
    );
    for p in &out.phases {
        println!(
            "{:<8} {:>10} {:>10} {:>9.0} {:>9.0} {:>9.0} {:>12.1}",
            p.name,
            p.sessions,
            p.accesses,
            p.p50_ns,
            p.p95_ns,
            p.p99_ns,
            p.throughput_per_us(),
        );
    }
}

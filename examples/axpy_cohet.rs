//! The paper's AXPY walkthrough (Fig. 4c): `Y = a*X + Y` with plain
//! `malloc` and an OpenCL-style kernel launch, validated against a
//! golden CPU implementation.
//!
//! Run with: `cargo run --example axpy_cohet`

use cohet::prelude::*;
use simcxl_workloads::axpy;

const N: u64 = 256;
const A: f64 = 2.5;

fn main() -> Result<(), CohetError> {
    let system = CohetSystem::builder().build();
    let mut proc = system.spawn_process();

    // 1. Allocate coherent memory for X and Y (Fig. 4c step 1).
    let x = proc.malloc(N * 8)?;
    let y = proc.malloc(N * 8)?;
    let (x_data, y_data) = axpy::inputs(N as usize);
    for i in 0..N {
        proc.write_u64(x + i * 8, x_data[i as usize].to_bits())?;
        proc.write_u64(y + i * 8, y_data[i as usize].to_bits())?;
    }

    // 2. Launch the AXPY kernel to a designated XPU (step 2). The kernel
    // uses the same pointers the CPU initialized — no copies.
    proc.launch_kernel(0, N, move |ctx, i| {
        let xi = ctx.load(x + i * 8)?;
        let yi = ctx.load(y + i * 8)?;
        ctx.store(y + i * 8, axpy::step_bits(A, xi, yi))
    })?;

    // 3. CPU consumes Y directly (step 3).
    let mut golden = y_data.clone();
    axpy::golden(A, &x_data, &mut golden);
    let mut max_err = 0.0f64;
    for i in 0..N {
        let got = f64::from_bits(proc.read_u64(y + i * 8)?);
        max_err = max_err.max((got - golden[i as usize]).abs());
    }
    println!("AXPY over {N} elements: max |error| = {max_err:.3e}");
    assert_eq!(max_err, 0.0, "bit-exact against golden");

    let stats = proc.os_stats();
    let (atc_hits, atc_misses) = proc.atc_stats(0);
    println!(
        "page faults: {}, XPU ATC hits/misses: {atc_hits}/{atc_misses}, time: {}",
        stats.minor_faults,
        proc.elapsed()
    );
    proc.free(x)?;
    proc.free(y)?;
    Ok(())
}

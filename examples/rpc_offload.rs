//! Killer app #2 (paper §V-B): RPC (de)serialization offload.
//!
//! Runs one HyperProtoBench-like workload through the PCIe RpcNIC
//! baseline and the three CXL-NIC designs, printing the Fig. 18-style
//! comparison. Every message is really encoded/decoded through the
//! protobuf wire format — the timing models ride on actual bytes.
//!
//! Run with: `cargo run --example rpc_offload [bench0..bench5]`

use protowire::{genbench, BenchId};
use simcxl_nic::{RpcNicModel, SerializeMode};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bench3".into());
    let id = BenchId::all()
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(&which))
        .unwrap_or(BenchId::Bench3);

    let mut w = genbench::generate(id, 7);
    w.messages.truncate(400);
    println!(
        "{}: {} messages, mean {:.0} wire bytes, mean depth {:.1}\n",
        id.label(),
        w.messages.len(),
        w.mean_wire_bytes(),
        w.mean_depth()
    );

    let mut model = RpcNicModel::asic();

    let d_rpc = model.deserialize_rpcnic(&w);
    let d_cxl = model.deserialize_cxl(&w);
    println!("deserialization (request path):");
    println!("  RpcNIC (PCIe): {:8.1} us", d_rpc.total.as_us_f64());
    println!(
        "  CXL-NIC (NC-P): {:7.1} us  ({:.2}x)",
        d_cxl.total.as_us_f64(),
        d_rpc.total.as_us_f64() / d_cxl.total.as_us_f64()
    );

    println!("\nserialization (response path):");
    let base = model.serialize(&w, SerializeMode::RpcNic).total.as_us_f64();
    for mode in SerializeMode::all() {
        let t = model.serialize(&w, mode).total.as_us_f64();
        println!("  {:28} {t:8.1} us  ({:.2}x)", mode.label(), base / t);
    }
}

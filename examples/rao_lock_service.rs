//! Killer app #1 (paper §V-A): a distributed lock service built on
//! remote atomic operations, offloaded to a CXL-NIC vs a PCIe-NIC.
//!
//! The CENTRAL CircusTent pattern models exactly this: many remote
//! clients hammering one lock word. The CXL-NIC caches the hot line in
//! its HMC and services RAOs in-cache with the line locked; the PCIe-NIC
//! pays two ordered DMA crossings per operation (Fig. 8).
//!
//! Run with: `cargo run --example rao_lock_service`

use simcxl_coherence::prelude::*;
use simcxl_nic::{CxlRaoNic, PcieRaoNic};
use simcxl_pcie::DmaConfig;
use simcxl_workloads::circustent::{self, CtConfig, CtPattern};

fn main() {
    let cfg = CtConfig {
        ops: 4096,
        ..CtConfig::default()
    };

    println!(
        "lock service: {} lock acquisitions from remote clients\n",
        cfg.ops
    );
    for (name, pattern) in [
        ("one hot lock (CENTRAL)", CtPattern::Central),
        ("striped locks (STRIDE1)", CtPattern::Stride1),
        ("random locks  (RAND)", CtPattern::Rand),
    ] {
        let ops = circustent::generate(pattern, cfg);

        let mut pcie = PcieRaoNic::new(DmaConfig::fpga_400mhz());
        let p = pcie.run(&ops);

        let mut cxl = CxlRaoNic::new(CacheConfig::hmc_128k(), HomeConfig::default(), 1);
        let c = cxl.run(&ops);

        // Functional check: every acquisition landed exactly once.
        let total: u64 = (0..cfg.footprint / 8)
            .map(|i| cxl.engine_mut().func_mem().read_u64(cfg.base + i * 8))
            .sum();
        assert_eq!(total, cfg.ops as u64, "lost or duplicated atomics");

        let stats = cxl.engine().cache_stats(cxl.hmc());
        println!("{name}:");
        println!("  PCIe-NIC: {:8.3} Mops/s", p.mops());
        println!(
            "  CXL-NIC:  {:8.3} Mops/s ({:.1}x, HMC hit rate {:.0}%)",
            c.mops(),
            c.mops() / p.mops(),
            stats.hits as f64 / (stats.hits + stats.misses) as f64 * 100.0
        );
    }
}

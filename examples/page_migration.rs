//! Page migration with ATC invalidation (paper §III-C2 and §VIII).
//!
//! A page first-touched by the CPU is migrated to the XPU's node after
//! the adaptive policy sees the XPU dominating its accesses. The HMM
//! handshake blocks the device, updates the unified page table,
//! invalidates the device ATC, and resumes — exactly the sequence the
//! paper describes.
//!
//! Run with: `cargo run --example page_migration`

use cohet_os::migration::{migrate_page, AdaptivePolicy, MigrationCost};
use cohet_os::{AccessKind, Accessor, NodeKind, NumaTopology, Process, VirtAddr};
use simcxl_mem::{AddrRange, PhysAddr};

struct AtcShim;

impl cohet_os::hmm::MmNotifier for AtcShim {
    fn name(&self) -> &str {
        "cxl-xpu0"
    }
    fn invalidate_page(&mut self, va: VirtAddr) {
        println!("  [driver] ATC invalidation for page {va}");
    }
    fn block(&mut self) {
        println!("  [driver] blocking device translation");
    }
    fn resume(&mut self) {
        println!("  [driver] resuming device translation");
    }
}

fn main() {
    let mut topo = NumaTopology::new(4096);
    let cpu = topo.add_node(NodeKind::Cpu, AddrRange::new(PhysAddr::new(0), 64 << 20));
    let xpu = topo.add_node(
        NodeKind::Xpu,
        AddrRange::new(PhysAddr::new(1 << 30), 64 << 20),
    );
    let mut proc = Process::new(topo);
    proc.hmm_mut().register(Box::new(AtcShim));

    let buf = proc.malloc(4096).unwrap();
    // CPU first touch: frame lands on the CPU node.
    let r = proc
        .access(Accessor::Cpu(cpu), buf, AccessKind::Write)
        .unwrap();
    println!("first touch by CPU -> frame on {}", r.node);

    // The XPU then hammers the page.
    let mut policy = AdaptivePolicy::new(2);
    policy.record(buf, cpu);
    for _ in 0..8 {
        proc.access(Accessor::Xpu(xpu), buf, AccessKind::Read)
            .unwrap();
        policy.record(buf, xpu);
    }

    if let Some(target) = policy.recommend(buf, cpu) {
        println!("policy: migrate page to {target}");
        let cost = migrate_page(&mut proc, buf, target, MigrationCost::default()).unwrap();
        policy.reset_page(buf);
        println!("migration completed in {cost}");
    }

    let after = proc
        .access(Accessor::Xpu(xpu), buf, AccessKind::Read)
        .unwrap();
    println!(
        "page now on {} (no refault: {})",
        after.node, !after.faulted
    );
    assert_eq!(after.node, xpu);
}

//! Multi-socket + expander topology: three directory homes.
//!
//! Two host sockets interleave the host memory pool between their home
//! agents at 4 KiB granularity, while a CXL Type-3 expander's range is
//! homed on its own (device-side) agent — the asymmetric host+expander
//! shape the `Topology` range table exists for. The traffic pattern
//! deliberately migrates lines across homes: socket-local writes, then
//! a device that reads socket 0's data and pushes results into the
//! expander, then socket 1 consuming those results. The per-home
//! statistics at the end show every shard carrying traffic.
//!
//! Run with: `cargo run --example multi_socket`

use sim_core::Tick;
use simcxl_coherence::prelude::*;
use simcxl_mem::{AddrRange, DramConfig, DramKind, MemoryInterface, PhysAddr};

const G: u64 = 1 << 30;
const SOCKET0: u64 = 0; // [0, 1G): socket 0 DRAM
const SOCKET1: u64 = G; // [1G, 2G): socket 1 DRAM
const EXPANDER: u64 = 2 * G; // [2G, 2G+256M): CXL Type-3 expander

fn main() {
    // Physical memory: one DDR5 pool per socket plus the expander
    // (slower: it sits behind the CXL.mem link).
    let mut mi = MemoryInterface::new();
    for base in [SOCKET0, SOCKET1] {
        mi.add_memory(
            AddrRange::new(PhysAddr::new(base), G),
            DramConfig::preset(DramKind::Ddr5_4400),
            Tick::ZERO,
        );
    }
    let expander_range = AddrRange::new(PhysAddr::new(EXPANDER), 256 << 20);
    mi.add_memory(
        expander_range,
        DramConfig::preset(DramKind::Ddr5_4400),
        Tick::from_ns(120),
    );

    // Three homes: sockets 0/1 interleave the host pool at page
    // granularity; the expander's range is claimed by home 2.
    let topology = Topology::ranges(3, vec![(expander_range, HomeId(2))], 2, 4096);
    let mut eng = ProtocolEngine::builder()
        .memory(mi)
        .topology(topology)
        .build();
    let cpu0 = eng.add_cache(CacheConfig::cpu_l1());
    let cpu1 = eng.add_cache(CacheConfig::cpu_l1());
    let xpu = eng.add_cache(CacheConfig::hmc_128k());

    // Phase 1 — each socket's CPU initializes its own pages (requests
    // land on that socket's home under the page interleave).
    let mut t = Tick::ZERO;
    for i in 0..64u64 {
        eng.issue(cpu0, MemOp::Store { value: i }, PhysAddr::new(i * 4096), t);
        eng.issue(
            cpu1,
            MemOp::Store { value: 1000 + i },
            PhysAddr::new(SOCKET1 + i * 4096),
            t,
        );
        t += Tick::from_ns(50);
    }
    eng.run_to_quiescence();

    // Phase 2 — cross-home migration: the XPU pulls socket 0's lines
    // away from their home (peer-forwarded data), then pushes derived
    // results into the expander region, homed on the device-side agent.
    let mut t = eng.now() + Tick::from_ns(10);
    for i in 0..64u64 {
        eng.issue(xpu, MemOp::Load, PhysAddr::new(i * 4096), t);
        eng.issue(
            xpu,
            MemOp::NcPush { value: i * i },
            PhysAddr::new(EXPANDER + i * 64),
            t + Tick::from_ns(5),
        );
        t += Tick::from_ns(80);
    }
    eng.run_to_quiescence();

    // Phase 3 — socket 1 consumes the expander results: lines migrate
    // again, this time out of the expander home's LLC.
    let mut t = eng.now() + Tick::from_ns(10);
    let mut sum = 0u64;
    let mut ids = Vec::new();
    for i in 0..64u64 {
        ids.push(eng.issue(cpu1, MemOp::Load, PhysAddr::new(EXPANDER + i * 64), t));
        t += Tick::from_ns(30);
    }
    for c in eng.run_to_quiescence() {
        if ids.contains(&c.req) {
            sum += c.value;
        }
    }
    assert_eq!(sum, (0..64u64).map(|i| i * i).sum::<u64>());
    eng.verify_invariants();

    println!(
        "three-home run complete at {} — per-home directory load:",
        eng.now()
    );
    println!("  home  role       requests  llc_hits  mem_fetch  snoops");
    let roles = ["socket 0", "socket 1", "expander"];
    let view = eng.home_stats_view();
    assert_eq!(view.len(), roles.len());
    for (h, s) in view.iter() {
        let role = roles[h.index()];
        println!(
            "  {:<5} {role:<10} {:>8}  {:>8}  {:>9}  {:>6}",
            h.index(),
            s.requests,
            s.llc_hits,
            s.mem_fetches,
            s.snoops_sent
        );
        assert!(s.requests > 0, "{h} saw no traffic");
    }
    let agg = view.total();
    println!(
        "aggregate: {} requests, {} LLC hits, {} memory fetches",
        agg.requests, agg.llc_hits, agg.mem_fetches
    );
}

//! Quickstart: the Cohet programming model in one minute.
//!
//! One `malloc`, one pointer, two compute pools: the CPU writes, the XPU
//! reads and updates through the *same* virtual address, and hardware
//! coherence (CXL.cache) keeps everyone honest — no `cudaMemcpy`, no
//! pinned buffers, no explicit mappings (paper §III-B S4).
//!
//! Run with: `cargo run --example quickstart`

use cohet::prelude::*;

fn main() -> Result<(), CohetError> {
    // Build a system with one CXL type-2 XPU and spawn a process.
    let system = CohetSystem::builder().xpus(1).build();
    let mut proc = system.spawn_process();

    // Plain malloc: no physical frames yet (overcommit-friendly).
    let counter = proc.malloc(4096)?;
    println!("allocated shared buffer at {counter}");

    // CPU initializes it...
    proc.write_u64(counter, 100)?;

    // ...the XPU increments it 8 times through the same pointer...
    proc.launch_kernel(0, 8, move |ctx, _i| {
        ctx.fetch_add(counter, 1)?;
        Ok(())
    })?;

    // ...and the CPU reads the coherent result.
    let v = proc.read_u64(counter)?;
    println!("counter after CPU init + 8 XPU increments: {v}");
    assert_eq!(v, 108);

    let stats = proc.os_stats();
    println!(
        "page faults: {} (first touch only), simulated time: {}",
        stats.minor_faults,
        proc.elapsed()
    );
    Ok(())
}

//! Weighted capacity-proportional interleaving: a big host next to a
//! small expander.
//!
//! A 4 GB host DRAM pool and a 1 GB CXL Type-3 expander share one
//! directory, striped 4:1 by `Topology::capacity_weighted` — the host
//! home owns four of every five stripes instead of either extreme the
//! older policies force (uniform interleave: half the directory on the
//! small pool's agent; range table: the expander's agent idle unless
//! its range is touched). Uniform traffic over the whole space then
//! reaches each home in proportion to the capacity it fronts, which the
//! per-home statistics (and the same `balance_error` metric the
//! `multihome_weighted` entry of `BENCH_hotpath.json` gates on) make
//! visible at the end.
//!
//! Run with: `cargo run --example weighted_pools`

use sim_core::{SimRng, Tick};
use simcxl_coherence::prelude::*;
use simcxl_mem::{AddrRange, DramConfig, DramKind, MemoryInterface, PhysAddr};

const G: u64 = 1 << 30;
const HOST_BYTES: u64 = 4 * G; // [0, 4G): host DDR5
const EXPANDER_BASE: u64 = 4 * G; // [4G, 5G): CXL Type-3 expander
const EXPANDER_BYTES: u64 = G;

fn main() {
    // Physical memory: the host pool plus the expander behind its
    // CXL.mem link latency.
    let mut mi = MemoryInterface::new();
    mi.add_memory(
        AddrRange::new(PhysAddr::new(0), HOST_BYTES),
        DramConfig::preset(DramKind::Ddr5_4400),
        Tick::ZERO,
    );
    mi.add_memory(
        AddrRange::new(PhysAddr::new(EXPANDER_BASE), EXPANDER_BYTES),
        DramConfig::preset(DramKind::Ddr5_4400),
        Tick::from_ns(120),
    );

    // Two homes weighted by pool capacity: 4G:1G reduces to 4:1, so the
    // stripe pattern repeats every five 4 KiB stripes with home 0
    // owning four of them.
    let topology = Topology::capacity_weighted(&[HOST_BYTES, EXPANDER_BYTES], 4096);
    let weights = topology.home_weights();
    assert_eq!(weights, vec![4, 1]);
    let mut eng = ProtocolEngine::builder()
        .memory(mi)
        .topology(topology)
        .build();
    let cpu = eng.add_cache(CacheConfig::cpu_l1());
    let xpu = eng.add_cache(CacheConfig::hmc_128k());

    // Uniform mixed traffic over the host pool's first gigabyte: the
    // address distribution is flat, so directory load per home should
    // track the 4:1 stripe shares, not the home count.
    let mut rng = SimRng::new(0xBEEF);
    let mut t = Tick::ZERO;
    for i in 0..4_000u64 {
        let agent = if i % 2 == 0 { cpu } else { xpu };
        let addr = PhysAddr::new((rng.below(G / 64)) * 64);
        let op = match rng.below(4) {
            0 => MemOp::Load,
            1 => MemOp::Store { value: i },
            2 => MemOp::Rmw {
                kind: AtomicKind::FetchAdd,
                operand: 1,
                operand2: 0,
            },
            _ => MemOp::NcPush { value: i },
        };
        eng.issue(agent, op, addr, t);
        t += Tick::from_ns(25);
    }
    eng.run_to_quiescence();
    eng.verify_invariants();

    // One snapshot for everything below: totals, per-home rows and the
    // deviation all read the same HomeStatsView.
    let view = eng.home_stats_view();
    let total_w: u64 = weights.iter().sum();
    let total_req: u64 = view.total().requests;
    println!("weighted 4:1 host+expander run complete at {}", eng.now());
    println!("  home  role       weight  requests  share   target");
    let roles = ["host", "expander"];
    let mut worst = 0.0f64;
    for (h, role) in roles.iter().enumerate() {
        let s = view.get(HomeId(h)).expect("home in view");
        let share = s.requests as f64 / total_req as f64;
        let target = weights[h] as f64 / total_w as f64;
        worst = worst.max((share - target).abs() / target);
        println!(
            "  {h:<5} {role:<10} {:>6}  {:>8}  {:>5.1}%  {:>5.1}%",
            weights[h],
            s.requests,
            share * 100.0,
            target * 100.0
        );
    }
    println!("max relative deviation from weight share: {worst:.3}");
    assert!(
        worst < 0.10,
        "directory traffic should track capacity shares (got {worst:.3})"
    );
}
